package bench

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/fleet"
	"repro/internal/gateway"
	"repro/internal/proxy"
	"repro/internal/secure"
	"repro/internal/workload"
)

// E14 measures the session-pooled gateway daemon: the deployment story
// where hundreds of distinct subjects reach the store through gatewayd's
// wire protocol instead of linking the fleet in-process. Two questions:
// what the extra wire hop costs (in-process fleet.Gateway vs gatewayd
// over loopback TCP, same fleet configuration behind both), and whether
// session pooling actually carries the load (every query after a
// subject's first should ride a recycled card session, not a fresh
// provision).
//
// Wall-clock by construction, like E9/E10; the workload is seeded.

const (
	e14Doc         = "e14-folder"
	e14MaxSubjects = 64
)

// e14Rig is a loopback DSP with the E14 document and one granted rule
// set per distinct subject (cycling the E10 access profiles).
type e14Rig struct {
	addr string
	key  secure.DocKey
	srv  *dsp.Server
}

func e14Subject(i int) string { return fmt.Sprintf("subj-%02d", i) }

func newE14Rig() (*e14Rig, error) {
	store := dsp.NewMemStore()
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 1400, Patients: 10, VisitsPerPatient: 2})
	r := &e14Rig{key: secure.KeyFromSeed(e14Doc)}
	pub := &proxy.Publisher{Store: store}
	if _, err := pub.PublishDocument(doc, docenc.EncodeOptions{
		DocID: e14Doc, Key: r.key, BlockPlain: 256, MinSkipBytes: 32,
	}); err != nil {
		return nil, err
	}
	for i := 0; i < e14MaxSubjects; i++ {
		rs := workload.MustParseRules(e10Subjects[i%len(e10Subjects)].rules)
		rs.Subject = e14Subject(i)
		rs.DocID = e14Doc
		if err := pub.GrantRules(r.key, rs); err != nil {
			return nil, err
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	r.addr = l.Addr().String()
	r.srv = dsp.NewServer(dsp.NewCache(store, 32<<20))
	go func() { _ = r.srv.Serve(l) }()
	return r, nil
}

func (r *e14Rig) close() { _ = r.srv.Close() }

// fleet dials a fresh store pool and builds the fleet both arms share
// the configuration of.
func (r *e14Rig) fleet(conns int) (*fleet.Gateway, *dsp.Pool, error) {
	pool, err := dsp.DialPool(r.addr, conns)
	if err != nil {
		return nil, nil, err
	}
	fl, err := fleet.New(fleet.Config{
		Store:   pool,
		Keys:    fleet.FixedKeys(map[string]secure.DocKey{e14Doc: r.key}),
		Profile: card.Modern,
	})
	if err != nil {
		pool.Close()
		return nil, nil, err
	}
	return fl, pool, nil
}

// e14Run is one arm's measurement: aggregate q/s plus sorted latencies.
type e14Run struct {
	qps  float64
	lats []time.Duration
}

// hammerInproc drives `subjects` concurrent tenants straight into the
// in-process fleet.
func hammerInproc(fl *fleet.Gateway, subjects, passes int) (e14Run, error) {
	return e14Hammer(subjects, passes, func(i, _ int) error {
		_, err := fl.Query(e14Subject(i), e14Doc, "")
		return err
	})
}

// hammerWire drives the same tenants through a gatewayd over loopback
// TCP: one connection and wire session per tenant, held for its passes
// (the churn cost itself is covered by the gateway package's tests; the
// benchmark measures steady-state query throughput).
func hammerWire(addr string, subjects, passes int) (e14Run, error) {
	sessions := make([]*gateway.Session, subjects)
	clients := make([]*gateway.Client, subjects)
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	for i := range sessions {
		c, err := gateway.Dial(addr)
		if err != nil {
			return e14Run{}, err
		}
		clients[i] = c
		if sessions[i], err = c.Open(e14Subject(i)); err != nil {
			return e14Run{}, err
		}
	}
	return e14Hammer(subjects, passes, func(i, _ int) error {
		_, err := sessions[i].Query(e14Doc, "")
		return err
	})
}

// e14Hammer runs the concurrent query loop shared by both arms and
// reports aggregate throughput plus sorted per-query latencies.
func e14Hammer(subjects, passes int, query func(subject, pass int) error) (e14Run, error) {
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		firstE error
	)
	lats := make([]time.Duration, subjects*passes)
	start := time.Now()
	for i := 0; i < subjects; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for p := 0; p < passes; p++ {
				qStart := time.Now()
				if err := query(i, p); err != nil {
					mu.Lock()
					if firstE == nil {
						firstE = fmt.Errorf("subject %d: %w", i, err)
					}
					mu.Unlock()
					return
				}
				lats[i*passes+p] = time.Since(qStart)
			}
		}(i)
	}
	wg.Wait()
	if firstE != nil {
		return e14Run{}, firstE
	}
	elapsed := time.Since(start).Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return e14Run{qps: float64(subjects*passes) / elapsed, lats: lats}, nil
}

// E14GatewayDaemon compares the in-process card-fleet gateway against
// gatewayd over loopback TCP as distinct subjects grow. Recorded
// metrics: both arms' queries/s and the daemon's p50/p99 latency
// (informational — wall clock), and the session-reuse ratio
// recycles/queries (gated — with pooling working, every query after a
// subject's first provision rides a recycled session, so the ratio must
// stay near 1).
func E14GatewayDaemon(rec *Recorder) []*Table {
	const passes = 4
	rig, err := newE14Rig()
	if err != nil {
		panic(err)
	}
	defer rig.close()

	t := &Table{
		ID:    "E14",
		Title: "session-pooled gateway daemon vs in-process fleet (loopback TCP)",
		Columns: []string{"subjects", "in-process q/s", "gatewayd q/s", "wire cost",
			"p50 ms", "p99 ms", "session reuse"},
		Notes: []string{
			"both arms run the same fleet configuration; gatewayd adds the length-prefixed wire protocol",
			"session reuse = recycles/queries on the daemon's pool (1.0 = every query rode a pooled card)",
			"wall-clock measurement (real network servers); workload is seeded",
		},
	}

	for _, subjects := range []int{4, 16, 64} {
		// In-process arm.
		fl, pool, err := rig.fleet(subjects)
		if err != nil {
			panic(err)
		}
		inproc, err := hammerInproc(fl, subjects, passes)
		if err != nil {
			panic(err)
		}
		fl.Close()
		pool.Close()

		// Daemon arm: same fleet config behind a gateway.Server.
		fl, pool, err = rig.fleet(subjects)
		if err != nil {
			panic(err)
		}
		srv := gateway.NewServer(fl, gateway.ServerConfig{Label: "e14"})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		go func() { _ = srv.Serve(l) }()
		wire, err := hammerWire(l.Addr().String(), subjects, passes)
		if err != nil {
			panic(err)
		}
		ps := fl.PoolStats()
		if err := srv.Close(); err != nil {
			panic(err)
		}
		fl.Close()
		pool.Close()

		reuse := float64(ps.Recycles) / float64(ps.Queries)
		rec.Record(fmt.Sprintf("inproc_qps_subjects%d", subjects), "q/s", inproc.qps)
		rec.Record(fmt.Sprintf("gatewayd_qps_subjects%d", subjects), "q/s", wire.qps)
		rec.Record(fmt.Sprintf("gatewayd_p50_subjects%d", subjects), "ms",
			float64(pctile(wire.lats, 50))/float64(time.Millisecond))
		rec.Record(fmt.Sprintf("gatewayd_p99_subjects%d", subjects), "ms",
			float64(pctile(wire.lats, 99))/float64(time.Millisecond))
		rec.RecordHigher(fmt.Sprintf("session_reuse_subjects%d", subjects), "ratio", reuse)

		t.AddRow(
			fmt.Sprintf("%d", subjects),
			fmt.Sprintf("%.1f", inproc.qps),
			fmt.Sprintf("%.1f", wire.qps),
			pct(inproc.qps-wire.qps, inproc.qps),
			ms(pctile(wire.lats, 50)),
			ms(pctile(wire.lats, 99)),
			fmt.Sprintf("%.2f", reuse),
		)
	}
	return []*Table{t}
}
