package bench

import (
	"fmt"

	"repro/internal/docenc"
	"repro/internal/workload"
)

// E1RuleScaling measures evaluator throughput as the rule count grows,
// across the four rule-shape profiles, with and without the skip index
// (whose per-subtree tag sets drive rule suspension). The demonstrated
// claim: thanks to suspension, cost grows sub-linearly in the number of
// rules — most automata sleep through most of the document.
func E1RuleScaling() []*Table {
	doc := workload.RandomDocument(workload.TreeConfig{
		Seed:      42,
		Elements:  3000,
		MaxDepth:  8,
		MaxFanout: 6,
		AttrProb:  0.3,
		TextProb:  0.7,
	})
	payload := MustPayload(doc, docenc.EncodeOptions{MinSkipBytes: 32})

	t := &Table{
		ID:    "E1",
		Title: "evaluator throughput vs number of rules (3000-element document)",
		Columns: []string{"profile", "rules", "events/s(idx)", "events/s(no idx)",
			"trans/event(idx)", "trans/event(no idx)", "suspended"},
		Notes: []string{
			"events/s: wall-clock throughput of the pure engine (no card, no crypto)",
			"trans/event: automaton transitions scanned per input event (machine-independent work measure)",
			"suspended: NFA entries put to sleep by the index (rule suspension)",
		},
	}
	for _, profile := range workload.Profiles {
		for _, n := range []int{4, 8, 16, 32, 64, 128} {
			cfg := workload.ProfileConfig(profile, 7, n, nil)
			rs := workload.RandomRuleSet("bench", cfg)
			withIdx, err := RunEngine(payload, rs, nil, false)
			if err != nil {
				panic(fmt.Sprintf("E1: %v", err))
			}
			noIdx, err := RunEngine(payload, rs, nil, true)
			if err != nil {
				panic(fmt.Sprintf("E1: %v", err))
			}
			t.AddRow(
				string(profile),
				fmt.Sprintf("%d", n),
				rate(withIdx),
				rate(noIdx),
				perEvent(withIdx.Stats.TransitionsScanned, withIdx.Events),
				perEvent(noIdx.Stats.TransitionsScanned, noIdx.Events),
				fmt.Sprintf("%d", withIdx.Stats.EntriesSuspended),
			)
		}
	}
	return []*Table{t}
}

func rate(r *EngineRun) string {
	if r.Wall <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0fk", float64(r.Events)/r.Wall.Seconds()/1000)
}

func perEvent(n, events int) string {
	if events == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(n)/float64(events))
}
