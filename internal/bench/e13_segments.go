package bench

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/secure"
)

// E13 quantifies what segmenting the durable tier bought over the E12
// single-log store. Three questions, three tables:
//
//  1. commit throughput — N concurrent delta re-publishers against a
//     1-, 4- and 16-segment store: one log serializes every writer on
//     one append mutex; per-shard segments let writers to different
//     documents log in parallel;
//  2. checkpoint interference — p99 commit latency while background
//     checkpoints run: the old store compacted inline on the writer
//     that crossed the budget and stalled everyone behind one log
//     lock; the segmented store compacts one shard at a time on a
//     background goroutine, so p99 stays near steady state;
//  3. recovery — reopen wall time, sequential vs GOMAXPROCS-parallel
//     segment replay, for growing segment counts.
//
// The containers are synthetic (the store never inspects ciphertext),
// so the numbers isolate the durability subsystem from the crypto
// pipeline.

const (
	e13BlockPlain = 2048
	e13NumBlocks  = 32
	e13Docs       = 32
)

// e13Container builds a fake container of the E13 geometry with every
// block stamped by its version.
func e13Container(docID string, version uint32) *docenc.Container {
	h := docenc.Header{DocID: docID, Version: version, BlockPlain: e13BlockPlain,
		PayloadLen: e13BlockPlain * e13NumBlocks}
	c := &docenc.Container{Header: h}
	for i := 0; i < e13NumBlocks; i++ {
		b := bytes.Repeat([]byte{byte(version)}, e13BlockPlain+secure.MACLen)
		binary.BigEndian.PutUint32(b, version)
		c.Blocks = append(c.Blocks, b)
	}
	return c
}

func e13DocID(d int) string { return fmt.Sprintf("e13-%d", d) }

// e13Open creates a fresh segmented store in a temp directory.
func e13Open(opts dsp.FileStoreOptions) (*dsp.FileStore, string, error) {
	dir, err := os.MkdirTemp("", "e13-*")
	if err != nil {
		return nil, "", err
	}
	fs, err := dsp.NewFileStoreOptions(dir, opts)
	if err != nil {
		_ = os.RemoveAll(dir)
		return nil, "", err
	}
	return fs, dir, nil
}

// e13Publish puts the E13 corpus at version 1.
func e13Publish(s dsp.Store) error {
	for d := 0; d < e13Docs; d++ {
		if err := s.PutDocument(e13Container(e13DocID(d), 1)); err != nil {
			return err
		}
	}
	return nil
}

// e13Delta pushes one 1-block delta commit, bumping docID to version v.
func e13Delta(up dsp.DocUpdater, docID string, v uint32) error {
	c := e13Container(docID, v)
	token, err := up.BeginUpdate(c.Header, v-1)
	if err != nil {
		return err
	}
	if err := up.PutBlocks(token, int(v)%e13NumBlocks, c.Blocks[:1]); err != nil {
		return err
	}
	return up.CommitUpdate(token)
}

// e13ConcurrentDeltas drives 1-block delta commits from `writers`
// goroutines (each owning its own documents, so no version conflicts),
// versions [from, from+rounds), and returns the total commits.
func e13ConcurrentDeltas(s dsp.Store, writers, rounds int, from uint32) (int64, error) {
	up, ok := s.(dsp.DocUpdater)
	if !ok {
		return 0, dsp.ErrUpdateUnsupported
	}
	var commits int64
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := from; v < from+uint32(rounds); v++ {
				for d := w; d < e13Docs; d += writers {
					if err := e13Delta(up, e13DocID(d), v); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	for w := 0; w < writers; w++ {
		commits += int64(rounds * ((e13Docs - w + writers - 1) / writers))
	}
	return commits, nil
}

// E13Seed publishes the E13 corpus (the fixture behind the root
// BenchmarkE13SegmentedCommits).
func E13Seed(s dsp.Store) error { return e13Publish(s) }

// E13ConcurrentRound drives one round of concurrent 1-block delta
// commits (every document bumped to version v by `writers` goroutines)
// and returns how many commits that was.
func E13ConcurrentRound(s dsp.Store, writers int, v uint32) (int64, error) {
	return e13ConcurrentDeltas(s, writers, 1, v)
}

// pctile returns the p-th percentile (0..100) of the sorted durations.
func pctile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := p * (len(sorted) - 1) / 100
	return sorted[i]
}

func us(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Microseconds())) }

// E13CommitScaling measures concurrent 1-block delta commit throughput
// against the segment count. NoSync isolates the log-lock serialization
// from the disk barrier — what remains is exactly the contention the
// segmentation removes.
func E13CommitScaling(rec *Recorder) (*Table, error) {
	const (
		writers = 8
		rounds  = 48
	)
	t := &Table{
		ID:      "E13",
		Title:   fmt.Sprintf("segmented WAL: %d-writer delta-commit throughput vs segment count", writers),
		Columns: []string{"segments", "commits", "wall ms", "commits/ms", "speedup"},
		Notes: []string{
			fmt.Sprintf("%d docs × %d blocks × %dB; every commit is a 1-block delta re-publish",
				e13Docs, e13NumBlocks, e13BlockPlain),
			"NoSync: the table isolates log-lock serialization, the contention segmentation removes",
			"1 segment reproduces the single-log E12 layout (every writer behind one append mutex)",
			fmt.Sprintf("GOMAXPROCS=%d: the lock-scaling win needs real cores — expect ~parity on a 1-core runner",
				runtime.GOMAXPROCS(0)),
		},
	}
	var base float64
	for _, segments := range []int{1, 4, 16} {
		fs, dir, err := e13Open(dsp.FileStoreOptions{
			Shards: segments, NoSync: true, CheckpointBytes: -1,
		})
		if err != nil {
			return nil, err
		}
		if err := e13Publish(fs); err != nil {
			return nil, err
		}
		start := time.Now()
		commits, err := e13ConcurrentDeltas(fs, writers, rounds, 2)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		perMs := float64(commits) / float64(wall.Milliseconds()+1)
		if segments == 1 {
			base = perMs
		}
		// Informational: the lock-scaling speedup needs real cores and is
		// ~1x on a 1-core runner, so it cannot gate across machines.
		rec.Record(fmt.Sprintf("commit_rate_segments%d", segments), "commits/ms", perMs)
		rec.Record(fmt.Sprintf("commit_speedup_segments%d", segments), "x", perMs/base)
		t.AddRow(fmt.Sprintf("%d", segments), fmt.Sprintf("%d", commits), ms(wall),
			fmt.Sprintf("%.1f", perMs), fmt.Sprintf("%.2fx", perMs/base))
		_ = fs.Close()
		_ = os.RemoveAll(dir)
	}
	return t, nil
}

// The checkpoint-interference phase uses a deliberately heavy corpus:
// the whole-store image must take real time to write, or a stop-the-
// world compaction hides inside the noise floor.
const (
	e13LatBlockPlain = 4096
	e13LatNumBlocks  = 128
	e13LatDocs       = 32
)

func e13LatContainer(docID string, version uint32) *docenc.Container {
	h := docenc.Header{DocID: docID, Version: version, BlockPlain: e13LatBlockPlain,
		PayloadLen: e13LatBlockPlain * e13LatNumBlocks}
	c := &docenc.Container{Header: h}
	for i := 0; i < e13LatNumBlocks; i++ {
		b := bytes.Repeat([]byte{byte(version)}, e13LatBlockPlain+secure.MACLen)
		binary.BigEndian.PutUint32(b, version)
		c.Blocks = append(c.Blocks, b)
	}
	return c
}

// E13CheckpointLatency measures per-commit latency with checkpoints
// off (steady state) and with a small budget that keeps background
// checkpoints running under the writer. With one segment every
// checkpoint streams the whole store image while holding the only log
// mutex, so the commits behind it stall for the full compaction; with
// 16 segments a checkpoint stalls 1/16th of the key space — and is
// 1/16th the size — while the rest commit unimpeded. This effect does
// not need multiple cores: the stall is lock wait, not CPU.
func E13CheckpointLatency(rec *Recorder) (*Table, error) {
	const commits = 1200
	t := &Table{
		ID:      "E13",
		Title:   "commit latency under background checkpoints vs segment count",
		Columns: []string{"segments", "steady p50 µs", "steady p99 µs", "churn p50 µs", "churn p99 µs", "p99 ratio", "max stall µs", "checkpoints"},
		Notes: []string{
			fmt.Sprintf("%d docs × %d blocks × %dB (a ~%d MB image); %d serial 1-block delta commits per phase",
				e13LatDocs, e13LatNumBlocks, e13LatBlockPlain,
				e13LatDocs*e13LatNumBlocks*e13LatBlockPlain>>20, commits),
			"steady: auto-checkpointing disabled; churn: budget small enough to compact continuously; ratio = churn p99 / steady p99",
			"checkpoints run on a background goroutine — the commit that trips the budget is never charged the compaction",
			"max stall bounds the wait of a put unlucky enough to hit its own segment mid-compaction: the whole image for 1 segment, 1/16th of it for 16",
			"wall-clock measurement (real files in TMPDIR)",
		},
	}
	measure := func(fs *dsp.FileStore, from uint32) ([]time.Duration, error) {
		up := dsp.DocUpdater(fs)
		lat := make([]time.Duration, 0, commits)
		for i := 0; i < commits; i++ {
			d := i % e13LatDocs
			v := from + uint32(i/e13LatDocs)
			h := docenc.Header{DocID: e13DocID(d), Version: v, BlockPlain: e13LatBlockPlain,
				PayloadLen: e13LatBlockPlain * e13LatNumBlocks}
			blk := bytes.Repeat([]byte{byte(v)}, e13LatBlockPlain+secure.MACLen)
			binary.BigEndian.PutUint32(blk, v)
			// Time the whole handshake: begin and put-blocks queue on the
			// same segment log mutex a compaction holds, so the stall
			// lands on whichever op reaches it first.
			start := time.Now()
			token, err := up.BeginUpdate(h, v-1)
			if err != nil {
				return nil, err
			}
			if err := up.PutBlocks(token, int(v)%e13LatNumBlocks, [][]byte{blk}); err != nil {
				return nil, err
			}
			if err := up.CommitUpdate(token); err != nil {
				return nil, err
			}
			lat = append(lat, time.Since(start))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat, nil
	}
	run := func(segments int, budget int64, from uint32) ([]time.Duration, int64, error) {
		fs, dir, err := e13Open(dsp.FileStoreOptions{
			Shards: segments, NoSync: true, CheckpointBytes: budget,
		})
		if err != nil {
			return nil, 0, err
		}
		defer func() { _ = fs.Close(); _ = os.RemoveAll(dir) }()
		for d := 0; d < e13LatDocs; d++ {
			if err := fs.PutDocument(e13LatContainer(e13DocID(d), 1)); err != nil {
				return nil, 0, err
			}
		}
		lat, err := measure(fs, from)
		if err != nil {
			return nil, 0, err
		}
		return lat, fs.Stats().Checkpoints, nil
	}
	for _, segments := range []int{1, 16} {
		steady, _, err := run(segments, -1, 2)
		if err != nil {
			return nil, err
		}
		churn, ckpts, err := run(segments, 256<<10, 2)
		if err != nil {
			return nil, err
		}
		ratio := float64(pctile(churn, 99)) / float64(pctile(steady, 99)+1)
		rec.Record(fmt.Sprintf("steady_p50_segments%d", segments), "us",
			float64(pctile(steady, 50))/float64(time.Microsecond))
		rec.Record(fmt.Sprintf("steady_p99_segments%d", segments), "us",
			float64(pctile(steady, 99))/float64(time.Microsecond))
		rec.Record(fmt.Sprintf("churn_p50_segments%d", segments), "us",
			float64(pctile(churn, 50))/float64(time.Microsecond))
		rec.Record(fmt.Sprintf("churn_p99_segments%d", segments), "us",
			float64(pctile(churn, 99))/float64(time.Microsecond))
		rec.Record(fmt.Sprintf("p99_ratio_segments%d", segments), "x", ratio)
		t.AddRow(fmt.Sprintf("%d", segments),
			us(pctile(steady, 50)), us(pctile(steady, 99)),
			us(pctile(churn, 50)), us(pctile(churn, 99)),
			fmt.Sprintf("%.1fx", ratio), us(churn[len(churn)-1]), fmt.Sprintf("%d", ckpts))
	}
	return t, nil
}

// E13Recovery measures reopen wall time — checkpoint loading plus log
// replay — sequentially and fanned out over GOMAXPROCS workers, as the
// segment count grows. One segment cannot parallelize; many segments
// recover concurrently on multi-core.
func E13Recovery(rec *Recorder) (*Table, error) {
	workers := runtime.GOMAXPROCS(0)
	t := &Table{
		ID:      "E13",
		Title:   fmt.Sprintf("recovery wall time: sequential vs %d-way parallel segment replay", workers),
		Columns: []string{"segments", "log KB", "sequential ms", "parallel ms", "speedup"},
		Notes: []string{
			fmt.Sprintf("%d docs × %d blocks × %dB published plus 24 delta rounds, reopened after an abrupt stop",
				e13Docs, e13NumBlocks, e13BlockPlain),
			"sequential: RecoveryParallelism=1; parallel: GOMAXPROCS workers over the segment set",
			fmt.Sprintf("GOMAXPROCS=%d: parallel replay needs real cores — expect ~parity on a 1-core runner",
				workers),
			"wall-clock measurement (real files in TMPDIR)",
		},
	}
	for _, segments := range []int{1, 4, 16} {
		fs, dir, err := e13Open(dsp.FileStoreOptions{
			Shards: segments, NoSync: true, CheckpointBytes: -1,
		})
		if err != nil {
			return nil, err
		}
		if err := e13Publish(fs); err != nil {
			return nil, err
		}
		if _, err := e13ConcurrentDeltas(fs, 4, 24, 2); err != nil {
			return nil, err
		}
		logBytes := fs.Stats().WALBytes
		if err := fs.Close(); err != nil {
			return nil, err
		}

		reopen := func(parallelism int) (time.Duration, error) {
			start := time.Now()
			r, err := dsp.NewFileStoreOptions(dir, dsp.FileStoreOptions{
				NoSync: true, RecoveryParallelism: parallelism,
			})
			if err != nil {
				return 0, err
			}
			wall := time.Since(start)
			return wall, r.Close()
		}
		seq, err := reopen(1)
		if err != nil {
			return nil, err
		}
		par, err := reopen(0)
		if err != nil {
			return nil, err
		}
		if segments == 16 {
			// After a full recovery cycle the re-checkpointed images must
			// still serve cold runs kernel-side: the store that just
			// replayed its WALs rewrites wire-prefixed images, and a batched
			// scan of every document should leave via sendfile.
			ratio, err := e13PostRecoveryColdServe(dir)
			if err != nil {
				return nil, err
			}
			if dsp.SendfileCapable() {
				rec.RecordHigher("recovery_cold_sendfile_ratio", "ratio", ratio)
			} else {
				rec.Record("recovery_cold_sendfile_ratio", "ratio", ratio)
			}
			t.Notes = append(t.Notes,
				fmt.Sprintf("post-recovery cold serve: %.0f%% of wire bytes via sendfile after re-checkpoint (capable: %v)",
					ratio*100, dsp.SendfileCapable()))
		}
		_ = os.RemoveAll(dir)
		rec.Record(fmt.Sprintf("recovery_seq_ms_segments%d", segments), "ms",
			float64(seq)/float64(time.Millisecond))
		rec.Record(fmt.Sprintf("recovery_par_ms_segments%d", segments), "ms",
			float64(par)/float64(time.Millisecond))
		rec.Record(fmt.Sprintf("recovery_speedup_segments%d", segments), "x",
			float64(seq)/float64(par+1))
		t.AddRow(fmt.Sprintf("%d", segments), kb(logBytes), ms(seq), ms(par),
			fmt.Sprintf("%.2fx", float64(seq)/float64(par+1)))
	}
	return t, nil
}

// e13PostRecoveryColdServe reopens a recovered store, re-checkpoints it
// (folding the replayed WAL state into fresh wire-prefixed images) and
// scans every document's full block range once over loopback TCP,
// returning the fraction of wire payload bytes that left via sendfile.
func e13PostRecoveryColdServe(dir string) (float64, error) {
	fs, err := dsp.NewFileStoreOptions(dir, dsp.FileStoreOptions{NoSync: true})
	if err != nil {
		return 0, err
	}
	defer fs.Close()
	if err := fs.Checkpoint(); err != nil {
		return 0, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	srv := dsp.NewServer(fs)
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()
	c, err := dsp.Dial(l.Addr().String())
	if err != nil {
		return 0, err
	}
	defer c.Close()

	var wire int64
	stored := int64(e13BlockPlain + secure.MACLen)
	prefix := int64(len(binary.AppendUvarint(nil, uint64(stored))))
	for d := 0; d < e13Docs; d++ {
		f, err := c.ReadBlocksFrame(e13DocID(d), 0, e13NumBlocks)
		if err != nil {
			return 0, err
		}
		f.Release()
		wire += e13NumBlocks * (stored + prefix)
	}
	if wire == 0 {
		return 0, nil
	}
	return float64(fs.Stats().SendfileBytes) / float64(wire), nil
}

// E13SegmentedStore runs the full segmented-durability experiment.
// Commit-scaling speedups are gated ratios; the latency percentiles,
// p99 interference ratio and recovery times are informational — they
// track checkpoint scheduling and disk behaviour too noisy to gate in
// CI.
func E13SegmentedStore(rec *Recorder) []*Table {
	tp, err := E13CommitScaling(rec)
	if err != nil {
		panic(err)
	}
	lat, err := E13CheckpointLatency(rec)
	if err != nil {
		panic(err)
	}
	trec, err := E13Recovery(rec)
	if err != nil {
		panic(err)
	}
	return []*Table{tp, lat, trec}
}
