package bench

import (
	"fmt"
	"time"

	"repro/internal/accessrule"
	"repro/internal/card"
	"repro/internal/core"
	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/proxy"
	"repro/internal/secure"
	"repro/internal/soe"
	"repro/internal/xmlstream"
	"repro/internal/xpath"
)

// EngineRun is the outcome of one engine-only evaluation (no card, no
// encryption): the pure streaming-evaluator cost.
type EngineRun struct {
	Stats  core.Stats
	Wall   time.Duration
	Events int
}

// RunEngine evaluates rules (and an optional query) over a pre-encoded
// payload, feeding decoded items straight into the evaluator with a
// discarding emitter. disableSkip turns the index off (the decoder still
// parses records; the evaluator ignores them) — the E1 suspension
// ablation.
func RunEngine(payload []byte, rs *accessrule.RuleSet, query *xpath.Path, disableSkip bool) (*EngineRun, error) {
	dict, dec, err := docenc.ParsePayload(payload, 0)
	if err != nil {
		return nil, err
	}
	eval, err := core.NewEvaluator(core.Config{
		Rules:       rs,
		Query:       query,
		Dict:        dict,
		Emitter:     core.Discard{},
		DisableSkip: disableSkip,
	})
	if err != nil {
		return nil, err
	}
	events := 0
	var valueBuf []byte
	start := time.Now()
	for {
		it, err := dec.Next()
		if err != nil {
			return nil, err
		}
		switch it.Kind {
		case docenc.ItemOpen:
			events++
			skip, err := eval.Open(it.Code, it.Meta)
			if err != nil {
				return nil, err
			}
			if skip > 0 {
				if err := dec.SkipContent(it.Meta); err != nil {
					return nil, err
				}
			}
		case docenc.ItemValue:
			events++
			if err := eval.Value(it.Text); err != nil {
				return nil, err
			}
		case docenc.ItemValueStart:
			valueBuf = valueBuf[:0]
		case docenc.ItemValueChunk:
			valueBuf = append(valueBuf, it.Text...)
			if it.Last {
				events++
				if err := eval.Value(string(valueBuf)); err != nil {
					return nil, err
				}
			}
		case docenc.ItemClose:
			events++
			if err := eval.Close(); err != nil {
				return nil, err
			}
		case docenc.ItemEOF:
			if err := eval.Finish(); err != nil {
				return nil, err
			}
			return &EngineRun{Stats: eval.Stats(), Wall: time.Since(start), Events: events}, nil
		}
	}
}

// MustPayload encodes a document payload or panics (harness setup).
func MustPayload(root *xmlstream.Node, opts docenc.EncodeOptions) []byte {
	payload, _, err := docenc.EncodePayload(root, opts)
	if err != nil {
		panic(fmt.Sprintf("bench: encoding payload: %v", err))
	}
	return payload
}

// PullRig is a full publish→provision→query bench fixture.
type PullRig struct {
	Store *dsp.MemStore
	Card  *card.Card
	Term  *proxy.Terminal
	Key   secure.DocKey
	DocID string
	Info  *docenc.EncodeInfo
}

// NewPullRig publishes doc and provisions a card with the given rule set.
func NewPullRig(doc *xmlstream.Node, docID string, profile card.Profile, encOpts docenc.EncodeOptions, rs *accessrule.RuleSet) (*PullRig, error) {
	r := &PullRig{
		Store: dsp.NewMemStore(),
		Card:  card.New(profile),
		Key:   secure.KeyFromSeed("bench:" + docID),
		DocID: docID,
	}
	encOpts.DocID = docID
	encOpts.Key = r.Key
	pub := &proxy.Publisher{Store: r.Store}
	info, err := pub.PublishDocument(doc, encOpts)
	if err != nil {
		return nil, err
	}
	r.Info = info
	if err := r.Card.PutKey(docID, r.Key); err != nil {
		return nil, err
	}
	r.Term = &proxy.Terminal{Store: r.Store, Card: r.Card}
	rs.DocID = docID
	if err := pub.GrantRules(r.Key, rs); err != nil {
		return nil, err
	}
	if err := r.Term.InstallRules(rs.Subject, docID); err != nil {
		return nil, err
	}
	return r, nil
}

// Query runs one pull query under the given session options.
func (r *PullRig) Query(subject, query string, opts soe.Options) (*proxy.Result, error) {
	r.Term.Options = opts
	return r.Term.Query(subject, r.DocID, query)
}

// FreshCard replaces the rig's card (per-iteration isolation for RAM
// experiments) and reinstalls the subject's rules.
func (r *PullRig) FreshCard(profile card.Profile, subject string) error {
	r.Card = card.New(profile)
	if err := r.Card.PutKey(r.DocID, r.Key); err != nil {
		return err
	}
	r.Term = &proxy.Terminal{Store: r.Store, Card: r.Card}
	return r.Term.InstallRules(subject, r.DocID)
}
