package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/accessrule"
	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/soe"
	"repro/internal/xmlstream"
	"repro/internal/xpath"
)

// sectionCount is the number of independently grantable sections of the
// E3 document.
const sectionCount = 20

// SectionedDocument builds the E3 workload: a root with sectionCount
// equally sized subtrees, each bearing a distinct tag (sec00..sec19) so
// the skip index can discriminate them, and identical inner structure.
func SectionedDocument(seed int64, itemsPerSection int) *xmlstream.Node {
	rng := rand.New(rand.NewSource(seed))
	root := &xmlstream.Node{Name: "doc"}
	for s := 0; s < sectionCount; s++ {
		sec := &xmlstream.Node{Name: fmt.Sprintf("sec%02d", s)}
		for i := 0; i < itemsPerSection; i++ {
			sec.Children = append(sec.Children, &xmlstream.Node{
				Name: "item",
				Children: []*xmlstream.Node{
					{Name: "name", Children: []*xmlstream.Node{{Text: fmt.Sprintf("item-%02d-%03d", s, i)}}},
					{Name: "data", Children: []*xmlstream.Node{{Text: randomText(rng, 64)}}},
				},
			})
		}
		root.Children = append(root.Children, sec)
	}
	return root
}

func randomText(rng *rand.Rand, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz "
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// SectionRules grants the first k sections.
func SectionRules(subject string, k int) *accessrule.RuleSet {
	rs := &accessrule.RuleSet{Subject: subject, DefaultSign: accessrule.Deny}
	for s := 0; s < k; s++ {
		rs.Rules = append(rs.Rules, accessrule.Rule{
			ID:     fmt.Sprintf("g%d", s),
			Sign:   accessrule.Permit,
			Object: xpath.MustParse(fmt.Sprintf("/doc/sec%02d", s)),
		})
	}
	return rs
}

// E3SkipBenefit sweeps the fraction of the document the subject may read
// and compares transfer, decryption and simulated e-gate time with and
// without the skip index. Expected shape (the paper's core performance
// claim): with the index, cost is proportional to the authorized
// fraction; without it, every byte is transferred and decrypted
// regardless.
func E3SkipBenefit() []*Table {
	doc := SectionedDocument(11, 24)
	t := &Table{
		ID:    "E3",
		Title: "skip-index benefit vs authorized fraction (20-section document, e-gate profile)",
		Columns: []string{"authorized", "blocks(idx)", "blocks(no idx)", "decrypted KB(idx)",
			"decrypted KB(no idx)", "time idx", "time no-idx", "skips"},
		Notes: []string{
			"time: simulated e-gate milliseconds (transfer + crypto + evaluation)",
			"blocks: fetched from the DSP out of the total stored",
		},
	}
	for _, k := range []int{0, 2, 5, 10, 15, 20} {
		rs := SectionRules("bench", k)
		rig, err := NewPullRig(doc, fmt.Sprintf("e3-%d", k), card.EGate, docenc.EncodeOptions{}, rs)
		if err != nil {
			panic(fmt.Sprintf("E3 setup: %v", err))
		}
		withIdx, err := rig.Query("bench", "", soe.Options{})
		if err != nil {
			panic(fmt.Sprintf("E3: %v", err))
		}
		if err := rig.FreshCard(card.EGate, "bench"); err != nil {
			panic(fmt.Sprintf("E3: %v", err))
		}
		noIdx, err := rig.Query("bench", "", soe.Options{DisableSkip: true, DisableCopy: true})
		if err != nil {
			panic(fmt.Sprintf("E3: %v", err))
		}
		t.AddRow(
			pct(float64(k), sectionCount),
			fmt.Sprintf("%d/%d", withIdx.Stats.BlocksFetched, withIdx.Stats.BlocksTotal),
			fmt.Sprintf("%d/%d", noIdx.Stats.BlocksFetched, noIdx.Stats.BlocksTotal),
			kb(withIdx.Stats.Meter.CryptoBytes),
			kb(noIdx.Stats.Meter.CryptoBytes),
			ms(withIdx.Stats.Time.Total()),
			ms(noIdx.Stats.Time.Total()),
			fmt.Sprintf("%d", withIdx.Stats.Session.Core.SkippedSubtrees),
		)
	}

	// Small-document crossover: where the index record overhead exceeds
	// its saving.
	t2 := &Table{
		ID:      "E3b",
		Title:   "index crossover on small documents (everything denied except one section)",
		Columns: []string{"items/section", "payload KB", "index overhead", "time idx", "time no-idx", "index wins"},
	}
	for _, items := range []int{1, 2, 4, 8, 16, 32} {
		doc := SectionedDocument(13, items)
		rs := SectionRules("bench", 1)
		rig, err := NewPullRig(doc, fmt.Sprintf("e3b-%d", items), card.EGate, docenc.EncodeOptions{}, rs)
		if err != nil {
			panic(fmt.Sprintf("E3b setup: %v", err))
		}
		withIdx, err := rig.Query("bench", "", soe.Options{})
		if err != nil {
			panic(fmt.Sprintf("E3b: %v", err))
		}
		if err := rig.FreshCard(card.EGate, "bench"); err != nil {
			panic(err)
		}
		noIdx, err := rig.Query("bench", "", soe.Options{DisableSkip: true, DisableCopy: true})
		if err != nil {
			panic(fmt.Sprintf("E3b: %v", err))
		}
		wins := "no"
		if withIdx.Stats.Time.Total() < noIdx.Stats.Time.Total() {
			wins = "yes"
		}
		t2.AddRow(
			fmt.Sprintf("%d", items),
			kb(int64(rig.Info.PayloadBytes)),
			pct(float64(rig.Info.IndexBytes), float64(rig.Info.PayloadBytes)),
			ms(withIdx.Stats.Time.Total()),
			ms(noIdx.Stats.Time.Total()),
			wins,
		)
	}
	return []*Table{t, t2}
}
