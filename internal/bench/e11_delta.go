package bench

import (
	"fmt"
	"net"
	"time"

	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/proxy"
	"repro/internal/secure"
	"repro/internal/workload"
	"repro/internal/xmlstream"
)

// E11 measures the write path the paper's update model implies (Section
// 5: documents evolve, rights change) at three churn levels: when a
// fraction of a published document's values change, what does it cost to
// bring the DSP to the new version? The historical path re-encodes and
// re-uploads the whole container; the delta path (streaming encoder +
// block differ + begin/commit patch handshake) uploads only the changed
// block runs. Bytes-on-wire are accounted at the client (request payload
// bytes), so the comparison is what actually crossed the network — over
// real loopback TCP, like E9/E10.

const e11Doc = "e11-folder"

// E11Rig is a loopback DSP reachable through one accounting client.
type E11Rig struct {
	Client *dsp.Client
	Key    secure.DocKey
	srv    *dsp.Server
}

// NewE11Rig starts a cache-fronted store server and dials it.
func NewE11Rig() (*E11Rig, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	r := &E11Rig{Key: secure.KeyFromSeed(e11Doc)}
	r.srv = dsp.NewServer(dsp.NewCache(dsp.NewMemStore(), 32<<20))
	go func() { _ = r.srv.Serve(l) }()
	r.Client, err = dsp.Dial(l.Addr().String())
	if err != nil {
		_ = r.srv.Close()
		return nil, err
	}
	return r, nil
}

// Close hangs up and drains the server.
func (r *E11Rig) Close() {
	_ = r.Client.Close()
	_ = r.srv.Close()
}

// E11BaseDocument is the published document the churn sweep edits.
func E11BaseDocument() *xmlstream.Node {
	return workload.MedicalFolder(workload.MedicalConfig{Seed: 1100, Patients: 60, VisitsPerPatient: 4})
}

// ChurnDocument returns a copy of root with roughly `percent` percent of
// its text values rewritten in place — same length, different bytes, so
// the edit models a value update rather than a structural change and the
// block delta stays local to the touched values.
func ChurnDocument(root *xmlstream.Node, percent int) *xmlstream.Node {
	if percent < 1 {
		percent = 1
	}
	every := 100 / percent
	if every < 1 {
		every = 1
	}
	n := 0
	var clone func(*xmlstream.Node) *xmlstream.Node
	clone = func(x *xmlstream.Node) *xmlstream.Node {
		cp := &xmlstream.Node{Name: x.Name, Text: x.Text}
		if x.IsText() {
			if n++; n%every == 0 && len(x.Text) > 0 {
				b := []byte(x.Text)
				for i := range b {
					b[i] = 'a' + (b[i]+5)%26
				}
				cp.Text = string(b)
			}
			return cp
		}
		for _, c := range x.Children {
			cp.Children = append(cp.Children, clone(c))
		}
		return cp
	}
	return clone(root)
}

// e11Opts is the shared encoding geometry.
func e11Opts(key secure.DocKey) docenc.EncodeOptions {
	return docenc.EncodeOptions{DocID: e11Doc, Key: key, BlockPlain: 256, MinSkipBytes: 32}
}

// E11FullRepublish publishes base then re-uploads the mutated tree as a
// whole container, returning the re-publication's wire bytes and wall
// time.
func E11FullRepublish(base, mutated *xmlstream.Node) (bytes int64, wall time.Duration, err error) {
	rig, err := NewE11Rig()
	if err != nil {
		return 0, 0, err
	}
	defer rig.Close()
	pub := &proxy.Publisher{Store: rig.Client}
	if _, err := pub.PublishDocument(base, e11Opts(rig.Key)); err != nil {
		return 0, 0, err
	}
	before := rig.Client.BytesWritten()
	start := time.Now()
	opts := e11Opts(rig.Key)
	opts.Version = 1
	if _, err := pub.PublishDocument(mutated, opts); err != nil {
		return 0, 0, err
	}
	return rig.Client.BytesWritten() - before, time.Since(start), nil
}

// E11DeltaRepublishRun publishes base then pushes the mutated tree as a
// block delta, returning the re-publication's wire bytes, wall time and
// the delta's shape.
func E11DeltaRepublishRun(base, mutated *xmlstream.Node) (bytes int64, wall time.Duration, ri *proxy.RepublishInfo, err error) {
	rig, err := NewE11Rig()
	if err != nil {
		return 0, 0, nil, err
	}
	defer rig.Close()
	pub := &proxy.Publisher{Store: rig.Client}
	if _, err := pub.PublishDocument(base, e11Opts(rig.Key)); err != nil {
		return 0, 0, nil, err
	}
	before := rig.Client.BytesWritten()
	start := time.Now()
	ri, err = pub.Republish(mutated, e11Opts(rig.Key))
	if err != nil {
		return 0, 0, nil, err
	}
	return rig.Client.BytesWritten() - before, time.Since(start), ri, nil
}

// E11DeltaRepublish compares full vs delta re-publication at 1%, 10%
// and 50% value churn over loopback TCP. Recorded metrics: absolute
// bytes-on-wire for both paths and the delta/full ratio (all gated —
// the workload is seeded, so wire bytes are deterministic); wall times
// are informational.
func E11DeltaRepublish(rec *Recorder) []*Table {
	base := E11BaseDocument()
	t := &Table{
		ID:    "E11",
		Title: "re-publish cost: full container vs block delta (loopback TCP)",
		Columns: []string{"churn", "blocks changed", "full KB", "delta KB", "delta/full",
			"full ms", "delta ms"},
		Notes: []string{
			"churn: fraction of text values rewritten in place (same length)",
			"bytes: request payload accounted at the client — headers, handshake and blocks",
			"delta also pays reading the old version back for the diff (counted in delta ms, not KB)",
			"wall-clock measurement (real network server); workload is seeded",
		},
	}
	for _, churn := range []int{1, 10, 50} {
		mutated := ChurnDocument(base, churn)
		fullBytes, fullWall, err := E11FullRepublish(base, mutated)
		if err != nil {
			panic(err)
		}
		deltaBytes, deltaWall, ri, err := E11DeltaRepublishRun(base, mutated)
		if err != nil {
			panic(err)
		}
		rec.RecordLower(fmt.Sprintf("full_bytes_churn%d", churn), "B", float64(fullBytes))
		rec.RecordLower(fmt.Sprintf("delta_bytes_churn%d", churn), "B", float64(deltaBytes))
		rec.RecordLower(fmt.Sprintf("delta_full_ratio_churn%d", churn), "ratio",
			float64(deltaBytes)/float64(fullBytes))
		rec.Record(fmt.Sprintf("full_ms_churn%d", churn), "ms",
			float64(fullWall)/float64(time.Millisecond))
		rec.Record(fmt.Sprintf("delta_ms_churn%d", churn), "ms",
			float64(deltaWall)/float64(time.Millisecond))
		t.AddRow(
			fmt.Sprintf("%d%%", churn),
			fmt.Sprintf("%d/%d", ri.ChangedBlocks, ri.TotalBlocks),
			kb(fullBytes),
			kb(deltaBytes),
			pct(float64(deltaBytes), float64(fullBytes)),
			ms(fullWall),
			ms(deltaWall),
		)
	}
	return []*Table{t}
}
