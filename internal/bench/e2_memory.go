package bench

import (
	"errors"
	"fmt"

	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/mem"
	"repro/internal/soe"
	"repro/internal/workload"
)

// E2MemoryFootprint validates the demonstration's headline hardware
// claim: the streaming evaluator runs in the e-gate's 1 KB of working
// memory. The sweep shows where the budget actually breaks (rule count ×
// document depth), which is the design envelope of the approach.
func E2MemoryFootprint() []*Table {
	t := &Table{
		ID:      "E2",
		Title:   "secure-RAM peak (bytes) on the e-gate profile (1024-byte budget)",
		Columns: []string{"profile", "rules", "depth", "RAM peak", "entries peak", "tokens", "fits 1KB"},
		Notes: []string{
			"RAM peak charges automata, token stack frames, predicate tokens, pending decisions and the input-window carry",
			"OVERFLOW: the session aborted exactly where a real applet's allocation would fail",
			"'//'-heavy rule sets on deep documents are the worst case: self-looping states replicate across every frame",
		},
	}
	for _, profile := range []workload.Profile{workload.ProfileShallow, workload.ProfileDescendant} {
		for _, rules := range []int{2, 4, 8, 16, 32} {
			for _, depth := range []int{4, 8, 12} {
				doc := workload.RandomDocument(workload.TreeConfig{
					Seed:      int64(100*rules + depth),
					Elements:  600,
					MaxDepth:  depth,
					MaxFanout: 3,
					TextProb:  0.5,
					AttrProb:  0.2,
				})
				cfg := workload.ProfileConfig(profile, int64(rules), rules, nil)
				rs := workload.RandomRuleSet("bench", cfg)

				rig, err := NewPullRig(doc, fmt.Sprintf("e2-%s-%d-%d", profile, rules, depth),
					card.EGate, docenc.EncodeOptions{}, rs)
				if err != nil {
					panic(fmt.Sprintf("E2 setup: %v", err))
				}
				res, err := rig.Query("bench", "", soe.Options{})
				switch {
				case err == nil:
					s := res.Stats.Session
					t.AddRow(
						string(profile),
						fmt.Sprintf("%d", rules),
						fmt.Sprintf("%d", depth),
						fmt.Sprintf("%d", s.RAMPeak),
						fmt.Sprintf("%d", s.Core.EntriesPeak),
						fmt.Sprintf("%d", s.Core.TokensCreated),
						"yes",
					)
				case errors.Is(err, mem.ErrBudget):
					t.AddRow(string(profile), fmt.Sprintf("%d", rules), fmt.Sprintf("%d", depth),
						"OVERFLOW", "-", "-", "no")
				default:
					panic(fmt.Sprintf("E2: unexpected failure: %v", err))
				}
			}
		}
	}
	return []*Table{t}
}
