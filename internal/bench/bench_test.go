package bench

import (
	"strings"
	"testing"

	"repro/internal/accessrule"
	"repro/internal/docenc"
	"repro/internal/workload"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "T1",
		Title:   "demo",
		Columns: []string{"col", "value"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("x", "1")
	tab.AddRow("longer-cell", "2")
	var b strings.Builder
	tab.Fprint(&b)
	out := b.String()
	for _, want := range []string{"T1 — demo", "longer-cell", "note: a note", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q:\n%s", want, out)
		}
	}
}

func TestRunEngineMatchesWorkSplit(t *testing.T) {
	doc := workload.RandomDocument(workload.TreeConfig{
		Seed: 1, Elements: 200, MaxDepth: 6, MaxFanout: 4, TextProb: 0.6,
	})
	payload := MustPayload(doc, docenc.EncodeOptions{MinSkipBytes: 24})
	rs := workload.RandomRuleSet("u", workload.RuleConfig{Seed: 2, Count: 8, MaxSteps: 3, DescProb: 0.4, NegProb: 0.4})
	withIdx, err := RunEngine(payload, rs, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	noIdx, err := RunEngine(payload, rs, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if withIdx.Events <= 0 || noIdx.Events < withIdx.Events {
		t.Errorf("event counts implausible: %d (idx) vs %d (no idx)", withIdx.Events, noIdx.Events)
	}
	if withIdx.Stats.TransitionsScanned > noIdx.Stats.TransitionsScanned {
		t.Errorf("the index must not increase transition work: %d vs %d",
			withIdx.Stats.TransitionsScanned, noIdx.Stats.TransitionsScanned)
	}
}

func TestSectionedDocumentAndRules(t *testing.T) {
	doc := SectionedDocument(1, 4)
	if got := len(doc.Children); got != sectionCount {
		t.Fatalf("sections = %d, want %d", got, sectionCount)
	}
	rs := SectionRules("u", 5)
	if len(rs.Rules) != 5 {
		t.Fatalf("rules = %d", len(rs.Rules))
	}
	if err := rs.Validate(); err != nil {
		t.Fatal(err)
	}
	// Granted fraction must match the rule count.
	frac := accessrule.VisibleFraction(doc, rs)
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("5/20 sections should be ~25%% of text, got %.2f", frac)
	}
}

func TestPolicyChangeCost(t *testing.T) {
	doc := workload.Agenda(workload.AgendaConfig{Seed: 9, Members: 8, EventsPerMember: 4})
	before := map[string]*accessrule.RuleSet{
		"bob": workload.MustParseRules("subject bob\ndefault -\n+ /agenda\n- //phone\n- //notes"),
	}
	after := map[string]*accessrule.RuleSet{
		"bob": workload.MustParseRules("subject bob\ndefault -\n+ /agenda\n- //phone"),
	}
	ours, baseline := PolicyChangeCost(doc, before, after, "bob")
	if ours <= 0 || baseline <= 0 {
		t.Fatalf("costs must be positive: %d, %d", ours, baseline)
	}
	if baseline <= ours {
		t.Errorf("the baseline must cost more than one sealed blob (%d vs %d)", baseline, ours)
	}
	// No change: the baseline cost must be zero.
	_, same := PolicyChangeCost(doc, before, before, "bob")
	if same != 0 {
		t.Errorf("unchanged policy re-encrypted %d bytes", same)
	}
}

// TestExperimentsSmoke runs every experiment once: they must complete and
// produce non-empty tables. (This is the regression net for the harness
// itself; the numbers are recorded in EXPERIMENTS.md.)
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	tracked := map[string]bool{"E9": true, "E10": true, "E11": true, "E12": true, "E13": true, "E14": true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rec := NewRecorder()
			tables := e.Run(rec)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			// The perf-trajectory experiments must feed the result file;
			// an empty metric set would silently hollow out BENCH_*.json.
			if tracked[e.ID] && len(rec.Metrics()) == 0 {
				t.Errorf("%s recorded no metrics", e.ID)
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("table %s is empty", tab.ID)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Errorf("table %s: row width %d != %d columns", tab.ID, len(row), len(tab.Columns))
					}
				}
			}
		})
	}
}
