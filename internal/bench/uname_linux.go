//go:build linux

package bench

import "syscall"

// osRelease returns the running kernel release (uname -r).
func osRelease() string {
	var u syscall.Utsname
	if err := syscall.Uname(&u); err != nil {
		return ""
	}
	buf := make([]byte, 0, len(u.Release))
	for _, c := range u.Release {
		if c == 0 {
			break
		}
		buf = append(buf, byte(c))
	}
	return string(buf)
}
