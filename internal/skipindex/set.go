// Package skipindex implements the paper's Skip Index: a compact,
// stream-embedded structural index that lets the SOE skip subtrees in
// which no access rule or query can apply.
//
// "The minimal information required to achieve this goal is the set of
// element tags that appear in each subtree (to check whether an access
// rule automaton is likely to reach its final state) as well as the
// subtree size (to make the skip actually possible). [...] we compress the
// document structure using a dictionary of tags and encode the set of tags
// thanks to a bit array referring to the tag dictionary. To further reduce
// the indexing overhead, we apply recursive compression on both the set of
// tags bit array and the subtree size." (Section 2.3.)
//
// This package provides the tag-set bit array (Set), its recursive
// compression (a child's set is a subset of its parent's set, so it is
// encoded with one bit per *set* bit of the parent), and the per-node
// metadata record interleaved in the encoded document stream.
package skipindex

import (
	"fmt"
	"math/bits"

	"repro/internal/tagdict"
)

// Set is a bit array over tag codes of a fixed universe (the document's
// tag dictionary).
type Set struct {
	words []uint64
	n     int // universe size in bits
}

// NewSet returns an empty set over a universe of n codes.
func NewSet(n int) Set {
	return Set{words: make([]uint64, (n+63)/64), n: n}
}

// Universe returns the universe size the set was created with.
func (s Set) Universe() int { return s.n }

// Add inserts code c.
func (s Set) Add(c tagdict.Code) {
	i := int(c)
	if i >= s.n {
		panic(fmt.Sprintf("skipindex: code %d outside universe %d", c, s.n))
	}
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Has reports membership of code c. Codes outside the universe (notably
// tagdict.NoCode) are never members.
func (s Set) Has(c tagdict.Code) bool {
	i := int(c)
	if i >= s.n {
		return false
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of codes in the set.
func (s Set) Count() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Empty reports whether the set has no members.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// UnionWith adds all members of o to s. The universes must match.
func (s Set) UnionWith(o Set) {
	if s.n != o.n {
		panic("skipindex: union of sets over different universes")
	}
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// SubsetOf reports whether every member of s is in o.
func (s Set) SubsetOf(o Set) bool {
	if s.n != o.n {
		panic("skipindex: subset test over different universes")
	}
	for i := range s.words {
		if s.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w, n: s.n}
}

// Members returns the codes in ascending order.
func (s Set) Members() []tagdict.Code {
	var out []tagdict.Code
	for i := 0; i < s.n; i++ {
		if s.Has(tagdict.Code(i)) {
			out = append(out, tagdict.Code(i))
		}
	}
	return out
}

// Equal reports whether both sets have the same universe and members.
func (s Set) Equal(o Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// String renders the set as a compact member list (debugging).
func (s Set) String() string {
	return fmt.Sprintf("Set%v", s.Members())
}

// MemBytes is the logical secure-memory footprint of the set: the packed
// bit-array size a card-resident layout needs (used for SOE RAM
// accounting).
func (s Set) MemBytes() int { return (s.n + 7) / 8 }
