package skipindex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tagdict"
)

func setOf(n int, members ...int) Set {
	s := NewSet(n)
	for _, m := range members {
		s.Add(tagdict.Code(m))
	}
	return s
}

func TestSetBasics(t *testing.T) {
	s := setOf(100, 0, 7, 63, 64, 99)
	for _, m := range []int{0, 7, 63, 64, 99} {
		if !s.Has(tagdict.Code(m)) {
			t.Errorf("missing member %d", m)
		}
	}
	if s.Has(1) || s.Has(98) {
		t.Error("phantom members")
	}
	if s.Has(tagdict.NoCode) {
		t.Error("NoCode must never be a member")
	}
	if s.Count() != 5 {
		t.Errorf("Count = %d, want 5", s.Count())
	}
	if s.Empty() {
		t.Error("set is not empty")
	}
	if !NewSet(10).Empty() {
		t.Error("fresh set must be empty")
	}
}

func TestSubsetAndUnion(t *testing.T) {
	a := setOf(70, 1, 2, 65)
	b := setOf(70, 1, 2, 3, 65)
	if !a.SubsetOf(b) {
		t.Error("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Error("b ⊄ a expected")
	}
	c := a.Clone()
	c.UnionWith(setOf(70, 3))
	if !c.Equal(b) {
		t.Errorf("union mismatch: %v vs %v", c, b)
	}
	if !a.Equal(setOf(70, 1, 2, 65)) {
		t.Error("Clone must not share storage")
	}
}

func TestRootCodec(t *testing.T) {
	s := setOf(19, 0, 8, 18)
	enc := EncodeRoot(s)
	if len(enc) != 3 {
		t.Fatalf("root bitmap of 19 codes must be 3 bytes, got %d", len(enc))
	}
	back, n, err := DecodeRoot(enc, 19)
	if err != nil || n != 3 {
		t.Fatalf("decode: %v (n=%d)", err, n)
	}
	if !back.Equal(s) {
		t.Fatalf("round trip changed set: %v -> %v", s, back)
	}
	if _, _, err := DecodeRoot(enc[:2], 19); err == nil {
		t.Error("truncated root bitmap must fail")
	}
}

func TestRelativeCodec(t *testing.T) {
	parent := setOf(40, 2, 5, 9, 30, 39)
	child := setOf(40, 5, 30)
	enc := EncodeRel(child, parent)
	if len(enc) != 1 {
		t.Fatalf("5 parent members must compress to 1 byte, got %d", len(enc))
	}
	back, n, err := DecodeRel(enc, parent)
	if err != nil || n != 1 {
		t.Fatalf("decode: %v", err)
	}
	if !back.Equal(child) {
		t.Fatalf("round trip changed set: %v -> %v", child, back)
	}
}

func TestRelativeRejectsNonSubset(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("encoding a non-subset must panic (encoder bug)")
		}
	}()
	EncodeRel(setOf(10, 1), setOf(10, 2))
}

func TestMetaRoundTrip(t *testing.T) {
	parent := setOf(64, 1, 2, 3, 10, 20, 63)
	meta := NodeMeta{Tags: setOf(64, 2, 20), ContentSize: 123456}
	enc := AppendMeta(nil, meta, parent)
	if len(enc) != MetaSize(meta, parent) {
		t.Errorf("MetaSize = %d, encoded %d", MetaSize(meta, parent), len(enc))
	}
	back, n, err := DecodeMeta(enc, parent)
	if err != nil || n != len(enc) {
		t.Fatalf("decode: %v", err)
	}
	if !back.Tags.Equal(meta.Tags) || back.ContentSize != meta.ContentSize {
		t.Fatalf("round trip changed meta: %+v -> %+v", meta, back)
	}
	if _, _, err := DecodeMeta(enc[:len(enc)-1], parent); err == nil {
		t.Error("truncated meta must fail")
	}
}

// TestQuickRelativeRoundTrip: random child ⊆ parent survives the
// recursive compression.
func TestQuickRelativeRoundTrip(t *testing.T) {
	f := func(seed int64, universe uint8) bool {
		n := int(universe)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		parent := NewSet(n)
		child := NewSet(n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.4 {
				parent.Add(tagdict.Code(i))
				if rng.Float64() < 0.5 {
					child.Add(tagdict.Code(i))
				}
			}
		}
		enc := EncodeRel(child, parent)
		if len(enc) != RelSize(parent) {
			return false
		}
		back, _, err := DecodeRel(enc, parent)
		return err == nil && back.Equal(child)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMemBytesPacked(t *testing.T) {
	if got := NewSet(9).MemBytes(); got != 2 {
		t.Errorf("9-bit set must charge 2 bytes, got %d", got)
	}
	if got := NewSet(64).MemBytes(); got != 8 {
		t.Errorf("64-bit set must charge 8 bytes, got %d", got)
	}
}

func TestMembersSorted(t *testing.T) {
	s := setOf(30, 20, 3, 11)
	m := s.Members()
	if len(m) != 3 || m[0] != 3 || m[1] != 11 || m[2] != 20 {
		t.Errorf("Members = %v", m)
	}
}
