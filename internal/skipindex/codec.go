package skipindex

import (
	"encoding/binary"
	"fmt"

	"repro/internal/tagdict"
)

// NodeMeta is the skip-index record attached to an element's opening tag
// in the encoded document stream.
type NodeMeta struct {
	// Tags is the set of element/attribute codes occurring strictly below
	// the element (its content). The element's own tag is not included:
	// by the time the SOE reads the record it has already seen that tag.
	Tags Set
	// ContentSize is the number of encoded bytes from just after the
	// node's header up to and including its closing opcode. Advancing the
	// stream by ContentSize bytes lands immediately after the element.
	ContentSize int
}

// EncodeRoot encodes a set against the full universe: one bit per
// dictionary code, LSB-first within each byte.
func EncodeRoot(s Set) []byte {
	out := make([]byte, (s.n+7)/8)
	for i := 0; i < s.n; i++ {
		if s.Has(codeAt(i)) {
			out[i>>3] |= 1 << (uint(i) & 7)
		}
	}
	return out
}

// DecodeRoot decodes an EncodeRoot image for a universe of n codes and
// returns the bytes consumed.
func DecodeRoot(data []byte, n int) (Set, int, error) {
	need := (n + 7) / 8
	if len(data) < need {
		return Set{}, 0, fmt.Errorf("skipindex: truncated root bitmap (need %d bytes, have %d)", need, len(data))
	}
	s := NewSet(n)
	for i := 0; i < n; i++ {
		if data[i>>3]&(1<<(uint(i)&7)) != 0 {
			s.Add(codeAt(i))
		}
	}
	return s, need, nil
}

// EncodeRel encodes child relative to parent: the paper's "recursive
// compression". Only codes present in parent can be present in child
// (a subtree's tag set is a subset of its ancestor's), so the encoding
// spends one bit per *member* of parent, in ascending code order.
// EncodeRel panics if child is not a subset of parent, which would be an
// encoder bug, never a data condition.
func EncodeRel(child, parent Set) []byte {
	if !child.SubsetOf(parent) {
		panic("skipindex: child tag set not a subset of parent's")
	}
	k := parent.Count()
	out := make([]byte, (k+7)/8)
	bit := 0
	for i := 0; i < parent.n; i++ {
		c := codeAt(i)
		if !parent.Has(c) {
			continue
		}
		if child.Has(c) {
			out[bit>>3] |= 1 << (uint(bit) & 7)
		}
		bit++
	}
	return out
}

// RelSize returns the number of bytes EncodeRel produces for the given
// parent set.
func RelSize(parent Set) int { return (parent.Count() + 7) / 8 }

// DecodeRel decodes an EncodeRel image against the parent set and returns
// the bytes consumed.
func DecodeRel(data []byte, parent Set) (Set, int, error) {
	need := RelSize(parent)
	if len(data) < need {
		return Set{}, 0, fmt.Errorf("skipindex: truncated relative bitmap (need %d bytes, have %d)", need, len(data))
	}
	s := NewSet(parent.n)
	bit := 0
	for i := 0; i < parent.n; i++ {
		c := codeAt(i)
		if !parent.Has(c) {
			continue
		}
		if data[bit>>3]&(1<<(uint(bit)&7)) != 0 {
			s.Add(c)
		}
		bit++
	}
	return s, need, nil
}

// AppendMeta appends the encoded NodeMeta (relative bitmap + varint
// content size) to dst, compressing the tag set against the parent set.
func AppendMeta(dst []byte, meta NodeMeta, parent Set) []byte {
	dst = append(dst, EncodeRel(meta.Tags, parent)...)
	dst = binary.AppendUvarint(dst, uint64(meta.ContentSize))
	return dst
}

// MetaSize returns the encoded size of a NodeMeta under the given parent.
func MetaSize(meta NodeMeta, parent Set) int {
	return RelSize(parent) + uvarintLen(uint64(meta.ContentSize))
}

// DecodeMeta decodes a NodeMeta encoded by AppendMeta, given the parent
// set the bitmap was compressed against. It returns the bytes consumed.
func DecodeMeta(data []byte, parent Set) (NodeMeta, int, error) {
	tags, n, err := DecodeRel(data, parent)
	if err != nil {
		return NodeMeta{}, 0, err
	}
	size, m := binary.Uvarint(data[n:])
	if m <= 0 {
		return NodeMeta{}, 0, fmt.Errorf("skipindex: truncated content size")
	}
	return NodeMeta{Tags: tags, ContentSize: int(size)}, n + m, nil
}

// codeAt converts a universe index to a tag code.
func codeAt(i int) tagdict.Code { return tagdict.Code(i) }

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
