// Package fleet implements the card-fleet gateway: the multi-tenant
// trusted tier the paper's architecture implies but the demonstration
// never built. The deployment model is "one SOE per client, untrusted
// store shared by all" (Section 3); a portal serving many subjects
// therefore fronts a fleet of Secure Operating Environments behind a
// single admission point.
//
// The Gateway owns that fleet as a bounded per-subject session pool.
// Each pooled session is a proxy.Session — a provisioned card plus the
// prefetch pipeline — checked out for one query, recycled with its
// expensive state intact (document keys, amortized cipher contexts,
// sealed rule sets), and retired on failure or after sitting idle.
// Admission, per-subject session bounds, rate limits and quotas are
// pool policy; rule refreshes propagate version-checked at checkout so
// a revocation reaches every session of a subject without a broadcast.
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/card"
	"repro/internal/dsp"
	"repro/internal/proxy"
	"repro/internal/secure"
	"repro/internal/soe"
)

// KeySource hands the gateway the decryption key of a document — the
// stand-in for the PKI/licensing channel that delivers keys "via a
// secure channel from different sources" (Section 2.1). pki.Exchange or
// secure.KeyFromSeed both adapt naturally.
type KeySource func(docID string) (secure.DocKey, error)

// FixedKeys adapts a static docID→key table into a KeySource.
func FixedKeys(keys map[string]secure.DocKey) KeySource {
	return func(docID string) (secure.DocKey, error) {
		k, ok := keys[docID]
		if !ok {
			return secure.DocKey{}, fmt.Errorf("fleet: no key available for document %q", docID)
		}
		return k, nil
	}
}

// DefaultSessionsPerSubject bounds one subject's pooled sessions when
// the config does not say otherwise: enough to overlap a few concurrent
// queries per subject, small enough that a thousand-subject fleet does
// not hold a thousand×N warm cards.
const DefaultSessionsPerSubject = 4

// ErrRateLimited is returned when a subject exceeds its configured query
// rate; the caller should back off and retry.
var ErrRateLimited = errors.New("fleet: subject rate limit exceeded")

// ErrTooManySubjects is returned when admitting a new subject would
// exceed Config.MaxSubjects.
var ErrTooManySubjects = errors.New("fleet: subject quota exceeded")

// ErrClosed is returned for queries against a closed (draining) gateway.
var ErrClosed = errors.New("fleet: gateway is closed")

// Config assembles a Gateway.
type Config struct {
	// Store is the shared untrusted DSP tier (a MemStore, Cache, Client
	// or Pool — anything implementing dsp.Store).
	Store dsp.Store
	// Keys resolves document keys during provisioning.
	Keys KeySource
	// Profile is the hardware model of every fleet card. The zero value
	// selects card.Modern (a portal simulates contemporary secure
	// elements, not 2005 e-gates, unless asked otherwise).
	Profile card.Profile
	// MaxConcurrent bounds the queries admitted at once across all
	// subjects; <= 0 selects 2×GOMAXPROCS.
	MaxConcurrent int
	// MaxSessionsPerSubject bounds one subject's pooled sessions; <= 0
	// selects DefaultSessionsPerSubject. A subject's queries beyond the
	// bound wait for a recycled session instead of growing the pool.
	MaxSessionsPerSubject int
	// MaxSubjects bounds the distinct subjects the fleet will hold
	// sessions for; 0 means unlimited. Excess subjects are refused with
	// ErrTooManySubjects (admission control, not queueing: an unbounded
	// subject set is a memory commitment, not a latency one).
	MaxSubjects int
	// SubjectRate limits each subject to this many queries per second
	// (token bucket, burst SubjectBurst); 0 disables rate limiting.
	SubjectRate float64
	// SubjectBurst is the token-bucket depth when SubjectRate is set;
	// <= 0 selects max(1, ceil(SubjectRate)).
	SubjectBurst int
	// IdleTimeout retires pooled sessions idle longer than this; 0
	// disables the background reaper (ReapIdle can still be called).
	IdleTimeout time.Duration
	// Prefetch is the pull-pipeline depth used for fleet sessions
	// (see proxy.Terminal.Prefetch); 0 keeps the serial pull path.
	Prefetch int
	// Options passes ablation switches through to every session.
	Options soe.Options
}

// Gateway serves concurrent pull queries for many subjects over one
// shared store, multiplexing each subject's queries over a bounded pool
// of recycled sessions.
type Gateway struct {
	cfg   Config
	admit chan struct{}

	mu     sync.Mutex
	pools  map[string]*subjectPool
	closed bool

	inflight sync.WaitGroup
	reapStop chan struct{}
	reapDone chan struct{}
}

// pooledSession is one checkout unit: a proxy.Session (card + pipeline)
// plus the provisioning bookkeeping that decides what work a checkout
// still owes before the query can run.
type pooledSession struct {
	sess *proxy.Session
	card *card.Card
	// provisioned records the documents this session's card holds
	// key+rules for.
	provisioned map[string]bool
	// ruleEpochs records, per document, the subject pool's refresh epoch
	// at which this session last installed rules. A session behind the
	// pool's epoch re-pulls the sealed rule set at checkout — how a
	// revocation reaches sessions that were busy when it landed.
	ruleEpochs map[string]uint64
	idleSince  time.Time
}

// subjectPool is one subject's slot in the fleet: the bounded session
// pool, the shared provisioning/versioning records every session
// synchronizes against, and the aggregated meters. All mutable state is
// guarded by mu; stats are written only inside single critical
// sections, so a snapshot under mu can never tear.
type subjectPool struct {
	subject string

	mu   sync.Mutex
	cond *sync.Cond // signals a session returned to idle
	idle []*pooledSession
	all  []*pooledSession // every live session, idle and checked out
	live int

	// provisionedDocs: documents at least one session was provisioned
	// for — the set RefreshRules is willing to refresh (a refresh is not
	// an implicit key grant).
	provisionedDocs map[string]bool
	// ruleEpochs is the subject's refresh clock per document, bumped by
	// RefreshRules and by observed document-version bumps.
	ruleEpochs map[string]uint64
	// docVersions records, per document, the latest version a query of
	// this subject was served from. A served version above the record
	// means the document was re-published underneath the fleet: the
	// gateway then refreshes the subject's rules the same way
	// RefreshRules does, since policy changes typically ride along with
	// content changes (Section 5's update model).
	docVersions map[string]uint32

	// Token bucket (SubjectRate/SubjectBurst).
	tokens   float64
	lastFill time.Time

	stats SubjectStats
}

// SubjectStats aggregates one subject's fleet usage. The snapshot
// returned by Stats/SubjectStats is internally consistent: writers only
// update it inside one critical section per event, readers copy it
// under the same lock.
type SubjectStats struct {
	Subject string
	Queries int64
	// Errors counts queries that failed after admission.
	Errors int64
	// BlocksFetched / BlocksWasted aggregate the terminal-side transfer.
	BlocksFetched int64
	BlocksWasted  int64
	// VersionRefreshes counts rule refreshes triggered by an observed
	// document version bump (delta or full re-publication).
	VersionRefreshes int64
	// Meter is the summed card work across the subject's queries.
	Meter card.Meter

	// Pool telemetry.
	SessionsLive int   // sessions held (idle + in use)
	SessionsIdle int   // sessions parked and ready for checkout
	Provisions   int64 // (session, doc) provisionings performed
	Recycles     int64 // sessions returned to the pool after a query
	Retires      int64 // sessions dropped after a failure
	Reaped       int64 // sessions retired by idle reaping
	Waits        int64 // checkouts that blocked on an exhausted pool
	RateLimited  int64 // queries refused by the subject rate limit
}

// PoolStats aggregates the whole fleet's pool telemetry — what a
// gateway daemon exports for observability.
type PoolStats struct {
	Subjects      int   `json:"subjects"`
	SessionsLive  int   `json:"sessions_live"`
	SessionsIdle  int   `json:"sessions_idle"`
	SessionsInUse int   `json:"sessions_in_use"`
	Provisions    int64 `json:"provisions"`
	Recycles      int64 `json:"recycles"`
	Retires       int64 `json:"retires"`
	Reaped        int64 `json:"reaped"`
	Waits         int64 `json:"waits"`
	RateLimited   int64 `json:"rate_limited"`

	Queries          int64 `json:"queries"`
	Errors           int64 `json:"errors"`
	BlocksFetched    int64 `json:"blocks_fetched"`
	BlocksWasted     int64 `json:"blocks_wasted"`
	VersionRefreshes int64 `json:"version_refreshes"`
}

// New builds a Gateway. Store and Keys are required.
func New(cfg Config) (*Gateway, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("fleet: config needs a store")
	}
	if cfg.Keys == nil {
		return nil, fmt.Errorf("fleet: config needs a key source")
	}
	if cfg.Profile.Name == "" {
		cfg.Profile = card.Modern
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSessionsPerSubject <= 0 {
		cfg.MaxSessionsPerSubject = DefaultSessionsPerSubject
	}
	if cfg.SubjectRate > 0 && cfg.SubjectBurst <= 0 {
		cfg.SubjectBurst = int(cfg.SubjectRate)
		if cfg.SubjectBurst < 1 {
			cfg.SubjectBurst = 1
		}
	}
	g := &Gateway{
		cfg:   cfg,
		admit: make(chan struct{}, cfg.MaxConcurrent),
		pools: make(map[string]*subjectPool),
	}
	if cfg.IdleTimeout > 0 {
		g.reapStop = make(chan struct{})
		g.reapDone = make(chan struct{})
		go g.reapLoop()
	}
	return g, nil
}

// Query runs one pull query for subject over doc, checking a session out
// of the subject's pool (provisioning one on first use). Calls for
// distinct subjects run in parallel up to the admission bound; calls for
// one subject run in parallel up to the subject's session bound and
// wait for a recycled session beyond it.
func (g *Gateway) Query(subject, docID, query string) (*proxy.Result, error) {
	sp, err := g.enter(subject)
	if err != nil {
		return nil, err
	}
	defer g.inflight.Done()

	if err := sp.admitRate(g.cfg); err != nil {
		return nil, err
	}

	ses, err := sp.checkout(g)
	if err != nil {
		return nil, err
	}

	// Take the admission slot only after owning a session: queries queued
	// behind a hot subject's exhausted pool must not hold admission
	// capacity, or one busy tenant would serialize the whole gateway.
	g.admit <- struct{}{}
	res, qerr := g.runOn(sp, ses, subject, docID, query)
	<-g.admit

	if qerr != nil {
		sp.mu.Lock()
		sp.stats.Errors++
		sp.retireLocked(ses)
		sp.mu.Unlock()
		return nil, qerr
	}

	// One critical section per successful query: stats, version-bump
	// detection, recycle. A torn read (BlocksWasted > BlocksFetched,
	// half-added meters) is impossible because this is the only place
	// query stats are written.
	sp.mu.Lock()
	sp.stats.Queries++
	sp.stats.BlocksFetched += int64(res.Stats.BlocksFetched)
	sp.stats.BlocksWasted += int64(res.Stats.BlocksWasted)
	sp.stats.Meter.Add(res.Stats.Meter)
	bumped := sp.noteVersionLocked(docID, res.Version)
	sp.mu.Unlock()

	if bumped {
		// The document moved underneath the fleet: re-pull this subject's
		// rules the way RefreshRules does, driven by the document instead
		// of the operator. The session is still exclusively ours, so the
		// install needs no lock; other sessions catch up at checkout via
		// the epoch bump noteVersionLocked performed. A failed refresh is
		// counted but does not fail the query that observed the bump (the
		// card keeps filtering under its installed rules, which its own
		// version check guarantees are not rolled back).
		err := ses.sess.InstallRules(subject, docID)
		sp.mu.Lock()
		if err != nil {
			sp.stats.Errors++
		} else {
			sp.stats.VersionRefreshes++
			ses.ruleEpochs[docID] = sp.ruleEpochs[docID]
		}
		sp.mu.Unlock()
	}

	sp.recycle(ses)
	return res, nil
}

// runOn provisions the checked-out session for docID if needed, catches
// it up with any rule refresh it missed, and runs the query.
func (g *Gateway) runOn(sp *subjectPool, ses *pooledSession, subject, docID, query string) (*proxy.Result, error) {
	sp.mu.Lock()
	epoch := sp.ruleEpochs[docID]
	sp.mu.Unlock()

	if !ses.provisioned[docID] {
		// The session is exclusively ours; provisioning touches only its
		// card, so no lock is held across the store round trips.
		key, err := g.cfg.Keys(docID)
		if err != nil {
			return nil, err
		}
		if err := ses.sess.Provision(docID, key); err != nil {
			return nil, err
		}
		if err := ses.sess.InstallRules(subject, docID); err != nil {
			return nil, err
		}
		ses.provisioned[docID] = true
		ses.ruleEpochs[docID] = epoch
		sp.mu.Lock()
		sp.provisionedDocs[docID] = true
		sp.stats.Provisions++
		sp.mu.Unlock()
	} else if ses.ruleEpochs[docID] < epoch {
		// A refresh landed while this session was busy or parked:
		// re-install before serving. Failure is non-fatal — the card
		// keeps filtering under the rules it has (never rolled back).
		if err := ses.sess.InstallRules(subject, docID); err != nil {
			sp.mu.Lock()
			sp.stats.Errors++
			sp.mu.Unlock()
		} else {
			ses.ruleEpochs[docID] = epoch
		}
	}
	return ses.sess.Query(subject, docID, query)
}

// enter finds or creates the subject's pool and registers the query as
// in flight — one atomic step under g.mu, so Close cannot slip between
// the closed check and the WaitGroup add.
func (g *Gateway) enter(subject string) (*subjectPool, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, ErrClosed
	}
	sp, ok := g.pools[subject]
	if !ok {
		if g.cfg.MaxSubjects > 0 && len(g.pools) >= g.cfg.MaxSubjects {
			return nil, fmt.Errorf("%w (%d subjects held, subject %q refused)", ErrTooManySubjects, len(g.pools), subject)
		}
		sp = &subjectPool{
			subject:         subject,
			provisionedDocs: make(map[string]bool),
			ruleEpochs:      make(map[string]uint64),
			docVersions:     make(map[string]uint32),
			tokens:          float64(g.cfg.SubjectBurst),
			lastFill:        time.Now(),
		}
		sp.cond = sync.NewCond(&sp.mu)
		sp.stats.Subject = subject
		g.pools[subject] = sp
	}
	g.inflight.Add(1)
	return sp, nil
}

// admitRate charges the subject's token bucket; a drained bucket refuses
// instead of queueing (the caller is told to back off, the pool is not
// used as a queue for over-limit traffic).
func (sp *subjectPool) admitRate(cfg Config) error {
	if cfg.SubjectRate <= 0 {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	now := time.Now()
	sp.tokens += now.Sub(sp.lastFill).Seconds() * cfg.SubjectRate
	if max := float64(cfg.SubjectBurst); sp.tokens > max {
		sp.tokens = max
	}
	sp.lastFill = now
	if sp.tokens < 1 {
		sp.stats.RateLimited++
		return ErrRateLimited
	}
	sp.tokens--
	return nil
}

// checkout hands the caller an exclusively-owned session: a recycled
// idle one (LIFO, keeping the warm set small), a fresh one while the
// subject is under its bound, or — pool exhausted — the next recycled
// session, waited for on the pool's condition.
func (sp *subjectPool) checkout(g *Gateway) (*pooledSession, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	waited := false
	for {
		if n := len(sp.idle); n > 0 {
			ses := sp.idle[n-1]
			sp.idle = sp.idle[:n-1]
			return ses, nil
		}
		if sp.live < g.cfg.MaxSessionsPerSubject {
			c := card.New(g.cfg.Profile)
			ses := &pooledSession{
				sess:        proxy.NewSession(g.cfg.Store, c, g.cfg.Options, g.cfg.Prefetch),
				card:        c,
				provisioned: make(map[string]bool),
				ruleEpochs:  make(map[string]uint64),
			}
			sp.live++
			sp.all = append(sp.all, ses)
			return ses, nil
		}
		if g.isClosed() {
			return nil, ErrClosed
		}
		if !waited {
			waited = true
			sp.stats.Waits++
		}
		sp.cond.Wait()
	}
}

func (g *Gateway) isClosed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.closed
}

// recycle parks a session for the next checkout. On a draining gateway
// the session is retired instead, so Close leaves no warm cards behind.
func (sp *subjectPool) recycle(ses *pooledSession) {
	if err := ses.sess.Reset(); err != nil {
		sp.mu.Lock()
		sp.retireLocked(ses)
		sp.mu.Unlock()
		return
	}
	ses.idleSince = time.Now()
	sp.mu.Lock()
	sp.idle = append(sp.idle, ses)
	sp.stats.Recycles++
	sp.mu.Unlock()
	sp.cond.Signal()
}

// dropLocked removes a session from the pool without classifying the
// drop (caller holds sp.mu and accounts it as a retire, reap, or
// shutdown drop).
func (sp *subjectPool) dropLocked(ses *pooledSession) {
	ses.sess.Close()
	sp.live--
	for i, s := range sp.all {
		if s == ses {
			sp.all = append(sp.all[:i], sp.all[i+1:]...)
			break
		}
	}
	// A waiter can now create a replacement session.
	sp.cond.Signal()
}

// retireLocked drops a failed session (caller holds sp.mu).
func (sp *subjectPool) retireLocked(ses *pooledSession) {
	sp.dropLocked(ses)
	sp.stats.Retires++
}

// noteVersionLocked records the version a query was served from and
// reports whether a rule refresh is owed. The caller holds sp.mu.
func (sp *subjectPool) noteVersionLocked(docID string, version uint32) bool {
	last, seen := sp.docVersions[docID]
	if seen && version <= last {
		// Never regress the record: a stale replica (or a malicious
		// store) serving an older version must not prime a spurious
		// "bump" on the next honestly-served query.
		return false
	}
	sp.docVersions[docID] = version
	if !seen {
		return false
	}
	// Claim the bump: the epoch advance sends every other session of the
	// subject through the re-install path at its next checkout.
	sp.ruleEpochs[docID]++
	return true
}

// ObservedDocVersion reports the latest document version served to the
// subject, -1 when the subject never queried the document.
func (g *Gateway) ObservedDocVersion(subject, docID string) int64 {
	g.mu.Lock()
	sp, ok := g.pools[subject]
	g.mu.Unlock()
	if !ok {
		return -1
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	v, seen := sp.docVersions[docID]
	if !seen {
		return -1
	}
	return int64(v)
}

// RefreshRules re-pulls the subject's sealed rule set for doc — the
// access-rights update protocol at fleet scale. Idle sessions are
// refreshed immediately; checked-out sessions catch up at their next
// checkout via the epoch bump. The card accepts the blob only if its
// version is not older than what is installed, so refreshing is always
// safe to call. An unprovisioned (subject, doc) pair refuses (a refresh
// is not an implicit grant of a key).
func (g *Gateway) RefreshRules(subject, docID string) error {
	g.mu.Lock()
	sp, ok := g.pools[subject]
	g.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: subject %q is not provisioned for document %q", subject, docID)
	}

	sp.mu.Lock()
	if !sp.provisionedDocs[docID] {
		sp.mu.Unlock()
		return fmt.Errorf("fleet: subject %q is not provisioned for document %q", subject, docID)
	}
	sp.ruleEpochs[docID]++
	epoch := sp.ruleEpochs[docID]
	// Take the idle sessions out of the pool so the installs below run on
	// exclusively-owned sessions without holding sp.mu across store I/O.
	idle := sp.idle
	sp.idle = nil
	sp.mu.Unlock()

	var firstErr error
	for _, ses := range idle {
		if err := ses.sess.InstallRules(subject, docID); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ses.ruleEpochs[docID] = epoch
	}

	sp.mu.Lock()
	sp.idle = append(sp.idle, idle...)
	sp.mu.Unlock()
	sp.cond.Broadcast()
	return firstErr
}

// RuleVersion reports the newest rule-set version installed for
// (subject, doc) across the subject's sessions, -1 when the subject has
// no sessions or rules yet (freshness probes).
func (g *Gateway) RuleVersion(subject, docID string) int64 {
	g.mu.Lock()
	sp, ok := g.pools[subject]
	g.mu.Unlock()
	if !ok {
		return -1
	}
	sp.mu.Lock()
	sessions := append([]*pooledSession(nil), sp.all...)
	sp.mu.Unlock()
	best := int64(-1)
	for _, ses := range sessions {
		if v := ses.card.RuleVersion(subject, docID); v > best {
			best = v
		}
	}
	return best
}

// Stats snapshots every subject's aggregated usage, sorted by subject
// for stable reporting. Each snapshot is taken in one pass under the
// subject's lock, so it is internally consistent (no torn meters, never
// BlocksWasted > BlocksFetched).
func (g *Gateway) Stats() []SubjectStats {
	g.mu.Lock()
	pools := make([]*subjectPool, 0, len(g.pools))
	for _, sp := range g.pools {
		pools = append(pools, sp)
	}
	g.mu.Unlock()
	out := make([]SubjectStats, 0, len(pools))
	for _, sp := range pools {
		out = append(out, sp.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Subject < out[j].Subject })
	return out
}

// SubjectStats snapshots one subject's aggregated usage (zero value when
// the subject never queried).
func (g *Gateway) SubjectStats(subject string) SubjectStats {
	g.mu.Lock()
	sp, ok := g.pools[subject]
	g.mu.Unlock()
	if !ok {
		return SubjectStats{Subject: subject}
	}
	return sp.snapshot()
}

// snapshot copies the stats in one critical section.
func (sp *subjectPool) snapshot() SubjectStats {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	st := sp.stats
	st.SessionsLive = sp.live
	st.SessionsIdle = len(sp.idle)
	return st
}

// PoolStats aggregates pool telemetry across the whole fleet.
func (g *Gateway) PoolStats() PoolStats {
	var ps PoolStats
	for _, st := range g.Stats() {
		ps.Subjects++
		ps.SessionsLive += st.SessionsLive
		ps.SessionsIdle += st.SessionsIdle
		ps.Provisions += st.Provisions
		ps.Recycles += st.Recycles
		ps.Retires += st.Retires
		ps.Reaped += st.Reaped
		ps.Waits += st.Waits
		ps.RateLimited += st.RateLimited
		ps.Queries += st.Queries
		ps.Errors += st.Errors
		ps.BlocksFetched += st.BlocksFetched
		ps.BlocksWasted += st.BlocksWasted
		ps.VersionRefreshes += st.VersionRefreshes
	}
	ps.SessionsInUse = ps.SessionsLive - ps.SessionsIdle
	return ps
}

// Subjects reports how many session pools the fleet currently holds.
func (g *Gateway) Subjects() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.pools)
}

// ReapIdle retires sessions that have been idle longer than olderThan
// and reports how many were dropped. The background reaper calls this
// with Config.IdleTimeout; ReapIdle(0) empties every idle pool.
func (g *Gateway) ReapIdle(olderThan time.Duration) int {
	g.mu.Lock()
	pools := make([]*subjectPool, 0, len(g.pools))
	for _, sp := range g.pools {
		pools = append(pools, sp)
	}
	g.mu.Unlock()

	cutoff := time.Now().Add(-olderThan)
	reaped := 0
	for _, sp := range pools {
		sp.mu.Lock()
		keep := sp.idle[:0]
		for _, ses := range sp.idle {
			if ses.idleSince.After(cutoff) {
				keep = append(keep, ses)
				continue
			}
			sp.dropLocked(ses)
			sp.stats.Reaped++
			reaped++
		}
		sp.idle = keep
		sp.mu.Unlock()
	}
	return reaped
}

// reapLoop is the background idle reaper (IdleTimeout > 0).
func (g *Gateway) reapLoop() {
	defer close(g.reapDone)
	tick := time.NewTicker(g.cfg.IdleTimeout / 2)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			g.ReapIdle(g.cfg.IdleTimeout)
		case <-g.reapStop:
			return
		}
	}
}

// Close drains the fleet: new queries are refused, in-flight queries
// finish (their sessions are closed instead of recycled), and Close
// returns once the last one has. The pools stay readable for stats, so
// a daemon can log a final snapshot after draining.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	pools := make([]*subjectPool, 0, len(g.pools))
	for _, sp := range g.pools {
		pools = append(pools, sp)
	}
	g.mu.Unlock()

	if g.reapStop != nil {
		close(g.reapStop)
		<-g.reapDone
	}
	// Wake checkout waiters so they observe the close and bail.
	for _, sp := range pools {
		sp.cond.Broadcast()
	}
	g.inflight.Wait()
	// Every session is now idle (recycle on a closed gateway still
	// parks; the drop below retires them all) or already retired.
	for _, sp := range pools {
		sp.mu.Lock()
		for _, ses := range sp.idle {
			sp.dropLocked(ses)
		}
		sp.idle = nil
		sp.mu.Unlock()
	}
}
