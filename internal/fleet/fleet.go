// Package fleet implements the card-fleet gateway: the multi-tenant
// trusted tier the paper's architecture implies but the demonstration
// never built. The deployment model is "one SOE per client, untrusted
// store shared by all" (Section 3); a portal serving many subjects
// therefore fronts a fleet of Secure Operating Environments — one
// provisioned card per subject — behind a single admission point.
//
// The Gateway owns that fleet. It admits concurrent Query calls under a
// bounded concurrency budget, provisions cards on demand (document key
// from the deployment's key source, sealed rule set pulled from the
// untrusted store and installed under the card's own version check),
// caches the provisioned card per subject, and aggregates per-subject
// work meters. Each card models a single-threaded applet, so the
// gateway enforces single-session ownership: queries for one subject
// serialize on that subject's card while different subjects proceed in
// parallel.
package fleet

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/card"
	"repro/internal/dsp"
	"repro/internal/proxy"
	"repro/internal/secure"
	"repro/internal/soe"
)

// KeySource hands the gateway the decryption key of a document — the
// stand-in for the PKI/licensing channel that delivers keys "via a
// secure channel from different sources" (Section 2.1). pki.Exchange or
// secure.KeyFromSeed both adapt naturally.
type KeySource func(docID string) (secure.DocKey, error)

// FixedKeys adapts a static docID→key table into a KeySource.
func FixedKeys(keys map[string]secure.DocKey) KeySource {
	return func(docID string) (secure.DocKey, error) {
		k, ok := keys[docID]
		if !ok {
			return secure.DocKey{}, fmt.Errorf("fleet: no key available for document %q", docID)
		}
		return k, nil
	}
}

// Config assembles a Gateway.
type Config struct {
	// Store is the shared untrusted DSP tier (a MemStore, Cache, Client
	// or Pool — anything implementing dsp.Store).
	Store dsp.Store
	// Keys resolves document keys during provisioning.
	Keys KeySource
	// Profile is the hardware model of every fleet card. The zero value
	// selects card.Modern (a portal simulates contemporary secure
	// elements, not 2005 e-gates, unless asked otherwise).
	Profile card.Profile
	// MaxConcurrent bounds the queries admitted at once across all
	// subjects; <= 0 selects 2×GOMAXPROCS.
	MaxConcurrent int
	// Prefetch is the terminal pipeline depth used for fleet queries
	// (see proxy.Terminal.Prefetch); 0 keeps the serial pull path.
	Prefetch int
	// Options passes ablation switches through to every session.
	Options soe.Options
}

// Gateway serves concurrent pull queries for many subjects over one
// shared store.
type Gateway struct {
	cfg    Config
	admit  chan struct{}
	mu     sync.Mutex
	cards  map[string]*tenant
	closed bool
}

// tenant is one subject's slot in the fleet: a provisioned card, the
// session lock that enforces single-session ownership, and the
// aggregated meters.
type tenant struct {
	mu   sync.Mutex // serializes sessions and provisioning on the card
	card *card.Card

	// provisioned records the documents this card holds key+rules for.
	provisioned map[string]bool

	// docVersions records, per document, the latest version a query of
	// this subject was served from. A served version above the record
	// means the document was re-published underneath the fleet: the
	// gateway then refreshes the subject's rules the same way
	// RefreshRules does, since policy changes typically ride along with
	// content changes (Section 5's update model).
	docVersions map[string]uint32

	stats SubjectStats
}

// SubjectStats aggregates one subject's fleet usage.
type SubjectStats struct {
	Subject string
	Queries int64
	// Errors counts queries that failed after admission.
	Errors int64
	// BlocksFetched / BlocksWasted aggregate the terminal-side transfer.
	BlocksFetched int64
	BlocksWasted  int64
	// VersionRefreshes counts rule refreshes triggered by an observed
	// document version bump (delta or full re-publication).
	VersionRefreshes int64
	// Meter is the summed card work across the subject's queries.
	Meter card.Meter
}

// New builds a Gateway. Store and Keys are required.
func New(cfg Config) (*Gateway, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("fleet: config needs a store")
	}
	if cfg.Keys == nil {
		return nil, fmt.Errorf("fleet: config needs a key source")
	}
	if cfg.Profile.Name == "" {
		cfg.Profile = card.Modern
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	return &Gateway{
		cfg:   cfg,
		admit: make(chan struct{}, cfg.MaxConcurrent),
		cards: make(map[string]*tenant),
	}, nil
}

// Query runs one pull query for subject over doc, provisioning the
// subject's card on first use. Calls for distinct subjects run in
// parallel up to the admission bound; calls for one subject serialize
// on that subject's card.
func (g *Gateway) Query(subject, docID, query string) (*proxy.Result, error) {
	tn, err := g.tenant(subject)
	if err != nil {
		return nil, err
	}
	// Take the card before the admission slot: queries queued behind a
	// hot subject's single card must not hold admission capacity, or one
	// busy tenant would serialize the whole gateway.
	tn.mu.Lock()
	defer tn.mu.Unlock()
	g.admit <- struct{}{}
	defer func() { <-g.admit }()

	if err := g.provisionLocked(tn, subject, docID); err != nil {
		tn.stats.Errors++
		return nil, err
	}
	term := &proxy.Terminal{
		Store:    g.cfg.Store,
		Card:     tn.card,
		Options:  g.cfg.Options,
		Prefetch: g.cfg.Prefetch,
	}
	res, err := term.Query(subject, docID, query)
	if err != nil {
		tn.stats.Errors++
		return nil, err
	}
	tn.stats.Queries++
	tn.stats.BlocksFetched += int64(res.Stats.BlocksFetched)
	tn.stats.BlocksWasted += int64(res.Stats.BlocksWasted)
	tn.stats.Meter.Add(res.Stats.Meter)
	g.noteVersionLocked(tn, subject, docID, res.Version)
	return res, nil
}

// noteVersionLocked records the version a query was served from. On a
// bump past the recorded version the subject's sealed rule set is
// re-pulled and re-installed — the same path RefreshRules takes, driven
// by the document instead of the operator. The caller holds the tenant
// lock. A failed refresh is counted but does not fail the query that
// observed the bump (the card keeps filtering under its installed rules,
// which the card's own version check guarantees are not rolled back).
func (g *Gateway) noteVersionLocked(tn *tenant, subject, docID string, version uint32) {
	last, seen := tn.docVersions[docID]
	if seen && version <= last {
		// Never regress the record: a stale replica (or a malicious
		// store) serving an older version must not prime a spurious
		// "bump" on the next honestly-served query.
		return
	}
	tn.docVersions[docID] = version
	if !seen {
		return
	}
	if err := g.installRulesLocked(tn, subject, docID); err != nil {
		tn.stats.Errors++
		return
	}
	tn.stats.VersionRefreshes++
}

// tenant returns (creating if needed) the subject's fleet slot.
func (g *Gateway) tenant(subject string) (*tenant, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, fmt.Errorf("fleet: gateway is closed")
	}
	tn, ok := g.cards[subject]
	if !ok {
		tn = &tenant{
			card:        card.New(g.cfg.Profile),
			provisioned: make(map[string]bool),
			docVersions: make(map[string]uint32),
		}
		tn.stats.Subject = subject
		g.cards[subject] = tn
	}
	return tn, nil
}

// ObservedDocVersion reports the latest document version served to the
// subject, -1 when the subject never queried the document.
func (g *Gateway) ObservedDocVersion(subject, docID string) int64 {
	g.mu.Lock()
	tn, ok := g.cards[subject]
	g.mu.Unlock()
	if !ok {
		return -1
	}
	tn.mu.Lock()
	defer tn.mu.Unlock()
	v, seen := tn.docVersions[docID]
	if !seen {
		return -1
	}
	return int64(v)
}

// provisionLocked installs the document key and the subject's sealed
// rule set on the tenant's card, once per (subject, doc). The caller
// holds the tenant lock.
func (g *Gateway) provisionLocked(tn *tenant, subject, docID string) error {
	if tn.provisioned[docID] {
		return nil
	}
	key, err := g.cfg.Keys(docID)
	if err != nil {
		return err
	}
	if err := tn.card.PutKey(docID, key); err != nil {
		return err
	}
	// Warm the card's amortized cipher state while the tenant lock is
	// already held: every session this tenant runs against docID shares
	// the one context (AES schedule + precomputed HMAC pads) instead of
	// rebuilding it per query.
	if _, err := tn.card.DecryptContext(docID); err != nil {
		return err
	}
	if err := g.installRulesLocked(tn, subject, docID); err != nil {
		return err
	}
	tn.provisioned[docID] = true
	return nil
}

// installRulesLocked pulls the subject's sealed rule set from the store
// and installs it; the card's version monotonicity rejects rollbacks, so
// a malicious or stale store cannot downgrade rights that are already
// provisioned.
func (g *Gateway) installRulesLocked(tn *tenant, subject, docID string) error {
	sealed, err := g.cfg.Store.RuleSet(docID, subject)
	if err != nil {
		return err
	}
	return tn.card.PutSealedRuleSet(docID, subject, sealed)
}

// RefreshRules re-pulls the subject's sealed rule set for doc — the
// access-rights update protocol at fleet scale. The card accepts the
// blob only if its version is not older than what is installed, so
// refreshing is always safe to call. An unprovisioned (subject, doc)
// pair refuses (a refresh is not an implicit grant of a key).
func (g *Gateway) RefreshRules(subject, docID string) error {
	tn, err := g.tenant(subject)
	if err != nil {
		return err
	}
	tn.mu.Lock()
	defer tn.mu.Unlock()
	if !tn.provisioned[docID] {
		return fmt.Errorf("fleet: subject %q is not provisioned for document %q", subject, docID)
	}
	return g.installRulesLocked(tn, subject, docID)
}

// RuleVersion reports the rule-set version installed for (subject, doc),
// -1 when the subject has no card or rules yet (freshness probes).
func (g *Gateway) RuleVersion(subject, docID string) int64 {
	g.mu.Lock()
	tn, ok := g.cards[subject]
	g.mu.Unlock()
	if !ok {
		return -1
	}
	return tn.card.RuleVersion(subject, docID)
}

// Stats snapshots every subject's aggregated usage, sorted by subject
// for stable reporting.
func (g *Gateway) Stats() []SubjectStats {
	g.mu.Lock()
	tenants := make([]*tenant, 0, len(g.cards))
	for _, tn := range g.cards {
		tenants = append(tenants, tn)
	}
	g.mu.Unlock()
	out := make([]SubjectStats, 0, len(tenants))
	for _, tn := range tenants {
		tn.mu.Lock()
		out = append(out, tn.stats)
		tn.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Subject < out[j].Subject })
	return out
}

// SubjectStats snapshots one subject's aggregated usage (zero value when
// the subject never queried).
func (g *Gateway) SubjectStats(subject string) SubjectStats {
	g.mu.Lock()
	tn, ok := g.cards[subject]
	g.mu.Unlock()
	if !ok {
		return SubjectStats{Subject: subject}
	}
	tn.mu.Lock()
	defer tn.mu.Unlock()
	return tn.stats
}

// Subjects reports how many cards the fleet currently holds.
func (g *Gateway) Subjects() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.cards)
}

// Close drops the fleet. In-flight queries finish; new ones are refused.
func (g *Gateway) Close() {
	g.mu.Lock()
	g.closed = true
	g.cards = make(map[string]*tenant)
	g.mu.Unlock()
}
