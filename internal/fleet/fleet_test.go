package fleet

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/proxy"
	"repro/internal/secure"
	"repro/internal/workload"
	"repro/internal/xmlstream"
)

// testWorld publishes a few documents with per-subject rule sets and
// returns the store, the key table, and the serial-terminal oracle
// output for every (subject, doc, query) combination.
type testWorld struct {
	store    *dsp.MemStore
	keys     map[string]secure.DocKey
	subjects []string
	docs     []string
	queries  []string
	// oracle[subject|doc|query] = serial Terminal.Query XML.
	oracle map[string]string
}

func newTestWorld(t *testing.T) *testWorld {
	t.Helper()
	w := &testWorld{
		store:    dsp.NewMemStore(),
		keys:     map[string]secure.DocKey{},
		subjects: []string{"nurse", "doctor", "admin", "researcher"},
		docs:     []string{"folder-a", "folder-b"},
		queries:  []string{"", "//emergency"},
		oracle:   map[string]string{},
	}
	rules := map[string]string{
		"nurse":      "subject nurse\ndefault -\n+ /folder\n- //ssn\n- //report",
		"doctor":     "subject doctor\ndefault +\n- //ssn",
		"admin":      "subject admin\ndefault +",
		"researcher": "subject researcher\ndefault -\n+ //diagnosis",
	}
	pub := &proxy.Publisher{Store: w.store}
	for i, docID := range w.docs {
		doc := workload.MedicalFolder(workload.MedicalConfig{
			Seed: int64(40 + i), Patients: 6 + 2*i, VisitsPerPatient: 3,
		})
		key := secure.KeyFromSeed("fleet:" + docID)
		w.keys[docID] = key
		if _, err := pub.PublishDocument(doc, docenc.EncodeOptions{
			DocID: docID, Key: key, BlockPlain: 128, MinSkipBytes: 32,
		}); err != nil {
			t.Fatal(err)
		}
		for _, subject := range w.subjects {
			rs := workload.MustParseRules(rules[subject])
			rs.DocID = docID
			if err := pub.GrantRules(key, rs); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Serial oracle: a fresh card per subject, classic one-block loop.
	for _, subject := range w.subjects {
		c := card.New(card.Modern)
		term := &proxy.Terminal{Store: w.store, Card: c}
		for _, docID := range w.docs {
			if err := c.PutKey(docID, w.keys[docID]); err != nil {
				t.Fatal(err)
			}
			if err := term.InstallRules(subject, docID); err != nil {
				t.Fatal(err)
			}
			for _, q := range w.queries {
				res, err := term.Query(subject, docID, q)
				if err != nil {
					t.Fatalf("oracle %s/%s/%q: %v", subject, docID, q, err)
				}
				w.oracle[subject+"|"+docID+"|"+q] = res.XML()
			}
		}
	}
	return w
}

func (w *testWorld) gateway(t *testing.T, prefetch int) *Gateway {
	t.Helper()
	g, err := New(Config{
		Store:    w.store,
		Keys:     FixedKeys(w.keys),
		Prefetch: prefetch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestGatewayMatchesSerialTerminal hammers one gateway from many
// goroutines with mixed subjects, documents and queries, and asserts
// every result is byte-identical to the serial Terminal.Query output.
// Run under -race this is also the fleet's thread-safety test.
func TestGatewayMatchesSerialTerminal(t *testing.T) {
	w := newTestWorld(t)
	for _, prefetch := range []int{0, proxy.DefaultPrefetch} {
		t.Run(fmt.Sprintf("prefetch=%d", prefetch), func(t *testing.T) {
			g := w.gateway(t, prefetch)
			defer g.Close()

			const (
				workers = 16
				rounds  = 12
			)
			var wg sync.WaitGroup
			errCh := make(chan error, workers)
			for wk := 0; wk < workers; wk++ {
				wg.Add(1)
				go func(wk int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						subject := w.subjects[(wk+r)%len(w.subjects)]
						docID := w.docs[(wk*r+r)%len(w.docs)]
						query := w.queries[(wk+r*3)%len(w.queries)]
						res, err := g.Query(subject, docID, query)
						if err != nil {
							errCh <- fmt.Errorf("%s/%s/%q: %w", subject, docID, query, err)
							return
						}
						want := w.oracle[subject+"|"+docID+"|"+query]
						if got := res.XML(); got != want {
							errCh <- fmt.Errorf("%s/%s/%q diverges from the serial terminal:\ngot:  %s\nwant: %s",
								subject, docID, query, got, want)
							return
						}
					}
				}(wk)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}

			if got := g.Subjects(); got != len(w.subjects) {
				t.Errorf("fleet holds %d cards, want one per subject (%d)", got, len(w.subjects))
			}
			var queries int64
			for _, st := range g.Stats() {
				queries += st.Queries
				if st.Errors != 0 {
					t.Errorf("subject %s recorded %d errors", st.Subject, st.Errors)
				}
				if st.Queries > 0 && st.Meter.BytesToCard == 0 {
					t.Errorf("subject %s has queries but an empty meter", st.Subject)
				}
			}
			if queries != workers*rounds {
				t.Errorf("aggregated %d queries, want %d", queries, workers*rounds)
			}
		})
	}
}

func TestGatewayProvisionFailures(t *testing.T) {
	w := newTestWorld(t)
	g := w.gateway(t, 0)
	defer g.Close()

	if _, err := g.Query("nurse", "no-such-doc", ""); err == nil {
		t.Error("query for an unknown document must fail")
	}
	if _, err := g.Query("stranger", w.docs[0], ""); err == nil {
		t.Error("query for a subject without granted rules must fail")
	}
	// A failed provisioning must not poison the tenant: the same
	// subject with a valid document still works.
	if _, err := g.Query("nurse", w.docs[0], ""); err != nil {
		t.Errorf("valid query after a failed one: %v", err)
	}
}

func TestGatewayRefreshRules(t *testing.T) {
	w := newTestWorld(t)
	g := w.gateway(t, 0)
	defer g.Close()
	docID := w.docs[0]

	if err := g.RefreshRules("nurse", docID); err == nil {
		t.Error("refresh before provisioning must refuse (no implicit key grant)")
	}
	if _, err := g.Query("nurse", docID, ""); err != nil {
		t.Fatal(err)
	}
	v1 := g.RuleVersion("nurse", docID)
	if v1 < 0 {
		t.Fatalf("no rule version after provisioning: %d", v1)
	}

	// The owner revokes: version bumps, the card follows on refresh.
	pub := &proxy.Publisher{Store: w.store}
	strict := workload.MustParseRules("subject nurse\ndefault -\n+ //name")
	strict.DocID = docID
	strict.Version = uint32(v1) + 1
	if err := pub.GrantRules(w.keys[docID], strict); err != nil {
		t.Fatal(err)
	}
	if err := g.RefreshRules("nurse", docID); err != nil {
		t.Fatal(err)
	}
	if v2 := g.RuleVersion("nurse", docID); v2 != v1+1 {
		t.Errorf("rule version after refresh = %d, want %d", v2, v1+1)
	}
	// Refreshing again with the same stored blob is a no-op, never a
	// rollback error.
	if err := g.RefreshRules("nurse", docID); err != nil {
		t.Errorf("idempotent refresh failed: %v", err)
	}
}

// TestGatewayDocVersionRefresh: a delta re-publication bumps the served
// version; the gateway notices on the next query and refreshes the
// subject's rules exactly as RefreshRules would.
func TestGatewayDocVersionRefresh(t *testing.T) {
	w := newTestWorld(t)
	g := w.gateway(t, 0)
	defer g.Close()
	docID := w.docs[0]

	res, err := g.Query("nurse", docID, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := g.ObservedDocVersion("nurse", docID); got != int64(res.Version) {
		t.Fatalf("observed version %d, served %d", got, res.Version)
	}
	v1 := g.RuleVersion("nurse", docID)

	// The owner re-publishes the document (delta) and re-grants tighter
	// rules alongside, the paper's combined update.
	pub := &proxy.Publisher{Store: w.store}
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 40, Patients: 6, VisitsPerPatient: 3})
	doc.Children = append(doc.Children, &xmlstream.Node{Name: "amendment",
		Children: []*xmlstream.Node{{Text: "revised after audit"}}})
	ri, err := pub.Republish(doc, docenc.EncodeOptions{DocID: docID, Key: w.keys[docID]})
	if err != nil {
		t.Fatal(err)
	}
	strict := workload.MustParseRules("subject nurse\ndefault -\n+ //name")
	strict.DocID = docID
	strict.Version = uint32(v1) + 1
	if err := pub.GrantRules(w.keys[docID], strict); err != nil {
		t.Fatal(err)
	}

	res2, err := g.Query("nurse", docID, "")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Version != ri.Version {
		t.Fatalf("served version %d after republish to %d", res2.Version, ri.Version)
	}
	st := g.SubjectStats("nurse")
	if st.VersionRefreshes != 1 {
		t.Fatalf("version refreshes = %d, want 1", st.VersionRefreshes)
	}
	if v2 := g.RuleVersion("nurse", docID); v2 != v1+1 {
		t.Fatalf("rule version %d after version-bump refresh, want %d", v2, v1+1)
	}
	if got := g.ObservedDocVersion("nurse", docID); got != int64(ri.Version) {
		t.Fatalf("observed version %d, want %d", got, ri.Version)
	}
	// Note: the refreshed (stricter) rules apply from the NEXT session;
	// the query that observed the bump ran under the rules installed at
	// its start. A follow-up query filters under the new policy.
	res3, err := g.Query("nurse", docID, "")
	if err != nil {
		t.Fatal(err)
	}
	if res3.XML() == res2.XML() {
		t.Fatal("stricter refreshed rules did not change the delivered view")
	}
	st = g.SubjectStats("nurse")
	if st.VersionRefreshes != 1 {
		t.Fatalf("steady-state query counted a refresh: %d", st.VersionRefreshes)
	}
}

func TestGatewayClose(t *testing.T) {
	w := newTestWorld(t)
	g := w.gateway(t, 0)
	if _, err := g.Query("admin", w.docs[0], ""); err != nil {
		t.Fatal(err)
	}
	g.Close()
	if _, err := g.Query("admin", w.docs[0], ""); err == nil {
		t.Error("closed gateway must refuse queries")
	}
}

// TestSharedDecryptContextRace hammers one tenant card's cached cipher
// context from many goroutines — the sharing the gateway sets up when it
// warms the context at provisioning and every session of the subject
// reuses it. Raw decrypts through the shared context run concurrently
// with gateway queries over the same card and with PutKey re-installs of
// the unchanged key (which must NOT invalidate the context), and every
// plaintext is checked against the one-shot secure.DecryptBlock oracle.
// Run under -race this is the decrypt-pipeline thread-safety test.
func TestSharedDecryptContextRace(t *testing.T) {
	w := newTestWorld(t)
	g := w.gateway(t, proxy.DefaultPrefetch)
	defer g.Close()

	docID := w.docs[0]
	key := w.keys[docID]
	c := card.New(card.Modern)
	if err := c.PutKey(docID, key); err != nil {
		t.Fatal(err)
	}
	ctx, err := c.DecryptContext(docID)
	if err != nil {
		t.Fatal(err)
	}

	const blocks = 32
	stored := make([][]byte, blocks)
	plains := make([][]byte, blocks)
	for i := range stored {
		plains[i] = []byte(fmt.Sprintf("shared-context block %d payload", i))
		stored[i], err = secure.EncryptBlock(key, docID, 1, uint32(i), plains[i])
		if err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, workers+2)

	// Raw shared-context decrypt hammer.
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for r := 0; r < 40; r++ {
				i := (wk*11 + r*5) % blocks
				got, err := ctx.DecryptBlock(docID, 1, uint32(i), stored[i])
				if err != nil {
					errCh <- fmt.Errorf("shared context block %d: %w", i, err)
					return
				}
				want, err := secure.DecryptBlock(key, docID, 1, uint32(i), stored[i])
				if err != nil || string(got) != string(want) {
					errCh <- fmt.Errorf("shared context block %d diverges from the one-shot oracle", i)
					return
				}
			}
		}(wk)
	}
	// Same-key re-installs racing the readers: the cached context must
	// survive (only a rotated key drops it).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 40; r++ {
			if err := c.PutKey(docID, key); err != nil {
				errCh <- err
				return
			}
			if _, err := c.DecryptContext(docID); err != nil {
				errCh <- err
				return
			}
		}
	}()
	// Gateway traffic over the same document, sharing its own per-tenant
	// contexts across pipelined sessions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 10; r++ {
			subject := w.subjects[r%len(w.subjects)]
			res, err := g.Query(subject, docID, "")
			if err != nil {
				errCh <- err
				return
			}
			if want := w.oracle[subject+"|"+docID+"|"]; res.XML() != want {
				errCh <- fmt.Errorf("gateway result for %s diverges under context hammer", subject)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// The context is still the cached one (same pointer), and rotating
	// the key really does drop it.
	again, err := c.DecryptContext(docID)
	if err != nil {
		t.Fatal(err)
	}
	if again != ctx {
		t.Error("re-installing the same key must keep the cached context")
	}
	rotated := secure.KeyFromSeed("rotated:" + docID)
	if err := c.PutKey(docID, rotated); err != nil {
		t.Fatal(err)
	}
	fresh, err := c.DecryptContext(docID)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == ctx {
		t.Error("rotating the key must invalidate the cached context")
	}
}
