package fleet

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/proxy"
)

// TestGatewayStatsConsistencyUnderLoad is the snapshot-tearing
// regression test: Stats/SubjectStats readers race a query hammer, and
// every snapshot must be internally consistent. Two invariants hold in
// any untorn snapshot: CryptoBytes == MACBytes (the card charges both
// meters together, always with the same value) and BlocksWasted <=
// BlocksFetched (waste is a subset of the fetch). A reader that
// interleaves with a half-applied update breaks one of them. Run under
// -race this also proves the locking discipline.
func TestGatewayStatsConsistencyUnderLoad(t *testing.T) {
	w := newTestWorld(t)
	g := w.gateway(t, proxy.DefaultPrefetch)
	defer g.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 8)

	check := func(st SubjectStats) bool {
		if st.Meter.CryptoBytes != st.Meter.MACBytes {
			t.Errorf("torn meter snapshot for %s: crypto=%d mac=%d",
				st.Subject, st.Meter.CryptoBytes, st.Meter.MACBytes)
			return false
		}
		if st.BlocksWasted > st.BlocksFetched {
			t.Errorf("torn snapshot for %s: wasted=%d > fetched=%d",
				st.Subject, st.BlocksWasted, st.BlocksFetched)
			return false
		}
		if st.SessionsIdle > st.SessionsLive {
			t.Errorf("torn pool snapshot for %s: idle=%d > live=%d",
				st.Subject, st.SessionsIdle, st.SessionsLive)
			return false
		}
		return true
	}

	// Snapshot readers: the whole fleet and single subjects.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for _, st := range g.Stats() {
					if !check(st) {
						return
					}
				}
				if !check(g.SubjectStats(w.subjects[0])) {
					return
				}
			}
		}()
	}

	// Query hammer.
	const workers, rounds = 8, 10
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				subject := w.subjects[(wk+r)%len(w.subjects)]
				docID := w.docs[r%len(w.docs)]
				if _, err := g.Query(subject, docID, ""); err != nil {
					errCh <- err
					return
				}
			}
			if wk == 0 {
				stop.Store(true)
			}
		}(wk)
	}
	wg.Wait()
	stop.Store(true)
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestGatewaySessionRecycling: serial traffic for one subject must ride
// a single pooled session — provisioned once, recycled per query.
func TestGatewaySessionRecycling(t *testing.T) {
	w := newTestWorld(t)
	g := w.gateway(t, 0)
	defer g.Close()

	const passes = 5
	docID := w.docs[0]
	for i := 0; i < passes; i++ {
		if _, err := g.Query("nurse", docID, ""); err != nil {
			t.Fatal(err)
		}
	}
	st := g.SubjectStats("nurse")
	if st.SessionsLive != 1 {
		t.Errorf("serial traffic grew the pool to %d sessions, want 1", st.SessionsLive)
	}
	if st.SessionsIdle != 1 {
		t.Errorf("session not parked after the last query: idle=%d", st.SessionsIdle)
	}
	if st.Recycles != passes {
		t.Errorf("recycles = %d, want %d (one per successful query)", st.Recycles, passes)
	}
	if st.Provisions != 1 {
		t.Errorf("provisions = %d, want 1 (key+rules installed once, then reused)", st.Provisions)
	}
	ps := g.PoolStats()
	if ps.SessionsInUse != 0 {
		t.Errorf("pool reports %d sessions in use while quiescent", ps.SessionsInUse)
	}
}

// TestGatewaySessionPoolBound: a subject's concurrency beyond its
// session bound waits for recycled sessions instead of growing the pool.
func TestGatewaySessionPoolBound(t *testing.T) {
	w := newTestWorld(t)
	g, err := New(Config{
		Store:                 w.store,
		Keys:                  FixedKeys(w.keys),
		MaxSessionsPerSubject: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	const workers, rounds = 8, 4
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := g.Query("doctor", w.docs[0], ""); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := g.SubjectStats("doctor")
	if st.SessionsLive > 2 {
		t.Errorf("pool grew to %d sessions past the bound of 2", st.SessionsLive)
	}
	if st.Queries != workers*rounds {
		t.Errorf("queries = %d, want %d", st.Queries, workers*rounds)
	}
}

// TestGatewayRateLimit: a drained token bucket refuses with
// ErrRateLimited and counts the refusal, without charging an error.
func TestGatewayRateLimit(t *testing.T) {
	w := newTestWorld(t)
	g, err := New(Config{
		Store:        w.store,
		Keys:         FixedKeys(w.keys),
		SubjectRate:  0.001, // refills far slower than the test runs
		SubjectBurst: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	if _, err := g.Query("admin", w.docs[0], ""); err != nil {
		t.Fatalf("first query within burst: %v", err)
	}
	_, err = g.Query("admin", w.docs[0], "")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-limit query returned %v, want ErrRateLimited", err)
	}
	st := g.SubjectStats("admin")
	if st.RateLimited != 1 {
		t.Errorf("rate-limited count = %d, want 1", st.RateLimited)
	}
	if st.Errors != 0 {
		t.Errorf("a rate-limit refusal must not count as a query error (got %d)", st.Errors)
	}
}

// TestGatewayMaxSubjects: the subject quota refuses new subjects but
// keeps serving held ones.
func TestGatewayMaxSubjects(t *testing.T) {
	w := newTestWorld(t)
	g, err := New(Config{
		Store:       w.store,
		Keys:        FixedKeys(w.keys),
		MaxSubjects: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	for _, subject := range w.subjects[:2] {
		if _, err := g.Query(subject, w.docs[0], ""); err != nil {
			t.Fatal(err)
		}
	}
	_, err = g.Query(w.subjects[2], w.docs[0], "")
	if !errors.Is(err, ErrTooManySubjects) {
		t.Fatalf("third subject returned %v, want ErrTooManySubjects", err)
	}
	if _, err := g.Query(w.subjects[0], w.docs[0], ""); err != nil {
		t.Errorf("held subject refused after quota hit: %v", err)
	}
}

// TestGatewayReapIdle: reaping empties the idle pool and the subject
// re-provisions transparently on its next query.
func TestGatewayReapIdle(t *testing.T) {
	w := newTestWorld(t)
	g := w.gateway(t, 0)
	defer g.Close()

	if _, err := g.Query("nurse", w.docs[0], ""); err != nil {
		t.Fatal(err)
	}
	if n := g.ReapIdle(0); n != 1 {
		t.Fatalf("ReapIdle(0) reaped %d sessions, want 1", n)
	}
	st := g.SubjectStats("nurse")
	if st.SessionsLive != 0 || st.SessionsIdle != 0 {
		t.Errorf("pool not empty after reap: live=%d idle=%d", st.SessionsLive, st.SessionsIdle)
	}
	if st.Reaped != 1 {
		t.Errorf("reaped count = %d, want 1", st.Reaped)
	}
	res, err := g.Query("nurse", w.docs[0], "")
	if err != nil {
		t.Fatalf("query after reap: %v", err)
	}
	if want := w.oracle["nurse|"+w.docs[0]+"|"]; res.XML() != want {
		t.Error("post-reap query diverges from the oracle")
	}
	if st := g.SubjectStats("nurse"); st.Provisions != 2 {
		t.Errorf("provisions = %d, want 2 (re-provisioned after reap)", st.Provisions)
	}
}
