// Selective dissemination — the demonstration's second application:
// "selective dissemination of multimedia streams through unsecured
// channels".
//
// A rated media stream is encrypted once and broadcast to every device;
// each device's card filters the stream under its own parental-control
// profile. Nobody without a provisioned card reads anything; a child's
// card delivers only all-ages segments; the terminal-side proxy drops the
// blocks the card proved irrelevant, so the child's card also does the
// least work.
//
// The example runs the dissemination twice: first over an in-process
// broadcast channel, then at fan-out — the encrypted stream is published
// to a sharded+cached DSP served over TCP and every device pulls it
// concurrently through one shared connection pool, fetching 8-block runs
// per round trip.
//
// Run with: go run ./examples/dissemination
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"repro/internal/card"
	"repro/internal/dissem"
	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/secure"
	"repro/internal/soe"
	"repro/internal/workload"
)

// profiles are the devices' parental-control rule sets. Rules key on the
// segment's @rating attribute, which precedes the payload, so the card
// settles each segment before its bulk arrives.
var profiles = map[string]string{
	"kids-tablet": "subject kids-tablet\ndefault -\n+ //segment[@rating = \"all\"]",
	"teen-laptop": "subject teen-laptop\ndefault +\n- //segment[@rating = \"adult\"]",
	"living-room": "subject living-room\ndefault +",
}

// newSubscriber provisions a fresh card for one device.
func newSubscriber(name string, key secure.DocKey) *dissem.Subscriber {
	c := card.New(card.EGate)
	if err := c.PutKey("channel-7", key); err != nil {
		log.Fatal(err)
	}
	rs := workload.MustParseRules(profiles[name])
	rs.DocID = "channel-7"
	if err := c.PutRuleSet(rs); err != nil {
		log.Fatal(err)
	}
	return dissem.NewSubscriber(name, c, nil, soe.Options{})
}

func printReceptions(receptions []*dissem.Reception) {
	fmt.Printf("\n%-12s  %-10s  %-9s  %-12s\n", "device", "segments", "blocks", "card time")
	for _, r := range receptions {
		delivered := 0
		if r.Tree != nil {
			delivered = len(r.Tree.Find("segment"))
		}
		fmt.Printf("%-12s  %-10d  %d/%-7d  %v\n",
			r.Subscriber, delivered, r.BlocksForwarded, r.BlocksOffered,
			r.Time.Total().Round(1e6))
	}
}

func main() {
	// The broadcaster encrypts the stream once, for all audiences.
	stream := workload.MediaStream(workload.StreamConfig{
		Seed: 11, Segments: 40, PayloadBytes: 300,
	})
	key, err := secure.NewDocKey()
	if err != nil {
		log.Fatal(err)
	}
	container, info, err := docenc.Encode(stream, docenc.EncodeOptions{
		DocID: "channel-7", Key: key, MinSkipBytes: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broadcasting 40 segments: %d encrypted blocks, %d payload bytes\n",
		len(container.Blocks), info.PayloadBytes)

	// Act 1: one shared broadcast channel, three devices listening.
	var subs []*dissem.Subscriber
	subjects := map[string]string{}
	for name := range profiles {
		subs = append(subs, newSubscriber(name, key))
		subjects[name] = name
	}
	receptions, err := dissem.BroadcastPerSubject(container, subjects, subs)
	if err != nil {
		log.Fatal(err)
	}
	printReceptions(receptions)
	fmt.Println("\nthe kids tablet received only all-ages segments, forwarded the fewest")
	fmt.Println("blocks to its card, and spent the least simulated card time — the")
	fmt.Println("filter runs on the receiving device, not at the broadcaster.")

	// Act 2: the same stream at fan-out. The broadcaster publishes the
	// encrypted container to an untrusted DSP (sharded store, LRU cache)
	// and the devices pull it concurrently over TCP through one shared
	// connection pool, in batched 8-block runs.
	store := dsp.NewCache(dsp.NewMemStore(), 16<<20)
	if err := store.PutDocument(container); err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := dsp.NewServer(store)
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	pool, err := dsp.DialPool(l.Addr().String(), len(profiles))
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		pulled  []*dissem.Reception
		pullErr error
	)
	for name := range profiles {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			r, err := pullAndFilter(pool, name, key)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if pullErr == nil {
					pullErr = fmt.Errorf("%s: %w", name, err)
				}
				return
			}
			pulled = append(pulled, r)
		}(name)
	}
	wg.Wait()
	if pullErr != nil {
		log.Fatal(pullErr)
	}
	printReceptions(pulled)
	st := store.Stats()
	fmt.Printf("\nfan-out over TCP: %d devices pulled %d blocks each through one pool;\n",
		len(profiles), len(container.Blocks))
	fmt.Printf("the DSP cache answered %.0f%% of block reads without touching the store.\n",
		100*st.HitRate())
}

// pullAndFilter fetches the encrypted stream from the DSP in batched runs
// and filters it on the device's own card — the pull-side equivalent of
// standing under the broadcast.
func pullAndFilter(pool *dsp.Pool, name string, key secure.DocKey) (*dissem.Reception, error) {
	header, err := pool.Header("channel-7")
	if err != nil {
		return nil, err
	}
	local := &docenc.Container{Header: header}
	n := header.NumBlocks()
	for at := 0; at < n; at += 8 {
		run := 8
		if at+run > n {
			run = n - at
		}
		blocks, err := pool.ReadBlocks("channel-7", at, run)
		if err != nil {
			return nil, err
		}
		local.Blocks = append(local.Blocks, blocks...)
	}
	sub := newSubscriber(name, key)
	recs, err := dissem.Broadcast(local, name, []*dissem.Subscriber{sub})
	if err != nil {
		return nil, err
	}
	return recs[0], nil
}
