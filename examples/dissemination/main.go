// Selective dissemination — the demonstration's second application:
// "selective dissemination of multimedia streams through unsecured
// channels".
//
// A rated media stream is encrypted once and broadcast to every device;
// each device's card filters the stream under its own parental-control
// profile. Nobody without a provisioned card reads anything; a child's
// card delivers only all-ages segments; the terminal-side proxy drops the
// blocks the card proved irrelevant, so the child's card also does the
// least work.
//
// Run with: go run ./examples/dissemination
package main

import (
	"fmt"
	"log"

	"repro/internal/card"
	"repro/internal/dissem"
	"repro/internal/docenc"
	"repro/internal/secure"
	"repro/internal/soe"
	"repro/internal/workload"
)

func main() {
	// The broadcaster encrypts the stream once, for all audiences.
	stream := workload.MediaStream(workload.StreamConfig{
		Seed: 11, Segments: 40, PayloadBytes: 300,
	})
	key, err := secure.NewDocKey()
	if err != nil {
		log.Fatal(err)
	}
	container, info, err := docenc.Encode(stream, docenc.EncodeOptions{
		DocID: "channel-7", Key: key, MinSkipBytes: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broadcasting 40 segments: %d encrypted blocks, %d payload bytes\n",
		len(container.Blocks), info.PayloadBytes)

	// Three devices with different parental-control profiles. Rules key
	// on the segment's @rating attribute, which precedes the payload, so
	// the card settles each segment before its bulk arrives.
	profiles := map[string]string{
		"kids-tablet": "subject kids-tablet\ndefault -\n+ //segment[@rating = \"all\"]",
		"teen-laptop": "subject teen-laptop\ndefault +\n- //segment[@rating = \"adult\"]",
		"living-room": "subject living-room\ndefault +",
	}
	var subs []*dissem.Subscriber
	subjects := map[string]string{}
	for name, rules := range profiles {
		c := card.New(card.EGate)
		if err := c.PutKey("channel-7", key); err != nil {
			log.Fatal(err)
		}
		rs := workload.MustParseRules(rules)
		rs.DocID = "channel-7"
		if err := c.PutRuleSet(rs); err != nil {
			log.Fatal(err)
		}
		subs = append(subs, dissem.NewSubscriber(name, c, nil, soe.Options{}))
		subjects[name] = name
	}

	receptions, err := dissem.BroadcastPerSubject(container, subjects, subs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-12s  %-10s  %-9s  %-12s\n", "device", "segments", "blocks", "card time")
	for _, r := range receptions {
		delivered := 0
		if r.Tree != nil {
			delivered = len(r.Tree.Find("segment"))
		}
		fmt.Printf("%-12s  %-10d  %d/%-7d  %v\n",
			r.Subscriber, delivered, r.BlocksForwarded, r.BlocksOffered,
			r.Time.Total().Round(1e6))
	}
	fmt.Println("\nthe kids tablet received only all-ages segments, forwarded the fewest")
	fmt.Println("blocks to its card, and spent the least simulated card time — the")
	fmt.Println("filter runs on the receiving device, not at the broadcaster.")
}
