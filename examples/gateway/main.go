// Gateway: the networked multi-tenant deployment, end to end in one
// process.
//
// A publisher puts an encrypted document and per-subject rule sets on
// the untrusted store; a gatewayd-style server fronts a card-fleet
// session pool over loopback TCP; several subjects connect through the
// wire client, query concurrently, disconnect and reconnect. The pool
// provisions each subject's card once and recycles it across queries
// and connections — the snapshot printed at the end shows the reuse.
//
// Run with: go run ./examples/gateway
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/fleet"
	"repro/internal/gateway"
	"repro/internal/proxy"
	"repro/internal/secure"
	"repro/internal/workload"
	"repro/internal/xmlstream"
)

func main() {
	// --- The publisher's side --------------------------------------------
	doc := mustParse(`
<clinic>
  <patient id="p1">
    <name>Ana Reyes</name>
    <ssn>123-45-6789</ssn>
    <visit><date>2026-02-10</date><diagnosis>flu</diagnosis></visit>
    <emergency><contact>+33 1 23 45 67 89</contact></emergency>
  </patient>
  <patient id="p2">
    <name>Jon Odei</name>
    <ssn>987-65-4321</ssn>
    <visit><date>2026-03-02</date><diagnosis>sprain</diagnosis></visit>
    <emergency><contact>+33 6 98 76 54 32</contact></emergency>
  </patient>
</clinic>`)

	key := secure.KeyFromSeed("clinic") // demo convention; see -auto-keys
	store := dsp.NewMemStore()
	pub := &proxy.Publisher{Store: store}
	if _, err := pub.PublishDocument(doc, docenc.EncodeOptions{DocID: "clinic", Key: key}); err != nil {
		log.Fatal(err)
	}
	subjects := map[string]string{
		"nurse":     "subject nurse\ndefault +\n- //ssn",
		"doctor":    "subject doctor\ndefault +",
		"emergency": "subject emergency\ndefault -\n+ //emergency\n+ //patient/name",
	}
	for _, rules := range subjects {
		rs := workload.MustParseRules(rules)
		rs.DocID = "clinic"
		if err := pub.GrantRules(key, rs); err != nil {
			log.Fatal(err)
		}
	}

	// --- The daemon's side (what cmd/gatewayd runs) ----------------------
	fl, err := fleet.New(fleet.Config{
		Store: store,
		Keys:  fleet.FixedKeys(map[string]secure.DocKey{"clinic": key}),
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := gateway.NewServer(fl, gateway.ServerConfig{Label: "example"})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	addr := l.Addr().String()
	fmt.Printf("gateway serving on %s\n\n", addr)

	// --- The subjects' side ----------------------------------------------
	// Each subject connects, queries, and disconnects — twice, so the
	// second round demonstrably rides the pooled card state. Different
	// subjects run concurrently; the pool keeps them isolated.
	for round := 1; round <= 2; round++ {
		var wg sync.WaitGroup
		for subject := range subjects {
			wg.Add(1)
			go func(subject string) {
				defer wg.Done()
				c, err := gateway.Dial(addr)
				if err != nil {
					log.Fatal(err)
				}
				defer c.Close()
				sess, err := c.Open(subject)
				if err != nil {
					log.Fatal(err)
				}
				res, err := sess.Query("clinic", "//patient/name")
				if err != nil {
					log.Fatal(err)
				}
				if round == 1 {
					fmt.Printf("%s sees //patient/name: %s\n", subject, res.XML)
				}
				if err := sess.Close(); err != nil {
					log.Fatal(err)
				}
			}(subject)
		}
		wg.Wait()
	}

	// One subject's full authorized view, to show the filtering.
	c, err := gateway.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := c.Open("emergency")
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Query("clinic", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nemergency's full authorized view (no ssn, no visits):")
	fmt.Println(res.XML)
	c.Close()

	// --- Observability ----------------------------------------------------
	// The same snapshot /stats serves over HTTP (pretty-print a live
	// daemon's with: sdsctl stats -gateway URL).
	snap := srv.Snapshot()
	fmt.Printf("\nsnapshot: %d queries over %d-subject pool, %d provisions, %d recycles\n",
		snap.Queries, snap.Pool.Subjects, snap.Pool.Provisions, snap.Pool.Recycles)
	for _, st := range snap.Subjects {
		fmt.Printf("  %-10s %d queries, %d blocks fetched, %d B to card\n",
			st.Subject, st.Queries, st.BlocksFetched, st.Meter.BytesToCard)
	}

	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	fl.Close()
}

func mustParse(src string) *xmlstream.Node {
	evs, err := xmlstream.Parse([]byte(src))
	if err != nil {
		log.Fatal(err)
	}
	tree, err := xmlstream.BuildTree(evs)
	if err != nil {
		log.Fatal(err)
	}
	return tree
}
