// Collaborative data sharing — the demonstration's first application:
// "collaborative works among a community of users" with policies that
// evolve as the community does, without ever re-encrypting the document.
//
// A community shares an agenda on an untrusted store. Each member's card
// enforces member-specific rules. The owner then changes the policy
// (revokes a member's access to phone numbers) by uploading one small
// re-sealed rule set — the document's encryption is untouched, and a
// malicious store replaying the old rights is rejected by the card.
//
// Run with: go run ./examples/collaborative
package main

import (
	"fmt"
	"log"

	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/pki"
	"repro/internal/proxy"
	"repro/internal/secure"
	"repro/internal/workload"
)

func main() {
	// The community's PKI (simulated, as in the demonstration itself).
	authority := pki.NewAuthority()
	owner, err := authority.Register("alice")
	check(err)
	_, err = authority.Register("bob")
	check(err)
	bobPrincipal, err := authority.Lookup("bob")
	check(err)

	// Alice generates the agenda and the document key, publishes the
	// encrypted agenda, and wraps the key for Bob through the PKI.
	agenda := workload.Agenda(workload.AgendaConfig{Seed: 14, Members: 4, EventsPerMember: 3})
	key, err := secure.NewDocKey()
	check(err)

	store := dsp.NewMemStore()
	publisher := &proxy.Publisher{Store: store}
	info, err := publisher.PublishDocument(agenda, docenc.EncodeOptions{DocID: "agenda", Key: key})
	check(err)
	fmt.Printf("alice published the agenda: %d stored bytes on the untrusted store\n", info.StoredBytes)

	wrapped, err := authority.Wrap(owner, "bob", "agenda", key)
	check(err)

	// Version 1 of Bob's rights: everything except private events.
	bobRulesV1 := workload.MustParseRules(`
subject bob
doc agenda
default +
- //event[visibility = "private"]`)
	bobRulesV1.Version = 1
	check(publisher.GrantRules(key, bobRulesV1))

	// --- Bob's side -------------------------------------------------------
	bobKey, err := authority.Unwrap(bobPrincipal, wrapped)
	check(err)
	bobCard := card.New(card.EGate)
	check(bobCard.PutKey("agenda", bobKey))
	bobTerminal := &proxy.Terminal{Store: store, Card: bobCard}
	check(bobTerminal.InstallRules("bob", "agenda"))

	res, err := bobTerminal.Query("bob", "agenda", "//member[@user = \"user01\"]")
	check(err)
	fmt.Println("\nbob's view of user01 (rights v1):")
	fmt.Println(res.XML())

	// --- The policy evolves ------------------------------------------------
	// Alice revokes Bob's access to phone numbers: ONE sealed blob is
	// re-uploaded; zero document bytes are re-encrypted.
	bobRulesV2 := workload.MustParseRules(`
subject bob
doc agenda
default +
- //event[visibility = "private"]
- //phone`)
	bobRulesV2.Version = 2
	check(publisher.GrantRules(key, bobRulesV2))
	check(bobTerminal.InstallRules("bob", "agenda"))

	res, err = bobTerminal.Query("bob", "agenda", "//member[@user = \"user01\"]/profile")
	check(err)
	fmt.Println("bob's view of user01's profile (rights v2 — phone revoked):")
	fmt.Println(res.XML())

	// --- A malicious store replays the old rights --------------------------
	stale, err := sealRules(key, bobRulesV1)
	check(err)
	if err := bobCard.PutSealedRuleSet("agenda", "bob", stale); err != nil {
		fmt.Printf("\nreplaying the v1 rights blob: REJECTED by the card (%v)\n", err)
	} else {
		log.Fatal("BUG: the card accepted a rollback")
	}
}

// sealRules reproduces what GrantRules uploads (to simulate the replay).
func sealRules(key secure.DocKey, rs interface{ MarshalBinary() ([]byte, error) }) ([]byte, error) {
	plain, err := rs.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return secure.EncryptBlob(key, card.RuleBlobNamespace("agenda", "bob"), 0, plain)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
