// Quickstart: the minimal end-to-end flow of the platform.
//
// A document owner encrypts an XML document and publishes it on the
// untrusted store (DSP); a user's card is provisioned with the document
// key and a rule set; the user queries the document through the card,
// which decrypts, verifies and filters the stream, returning only the
// authorized view.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/proxy"
	"repro/internal/secure"
	"repro/internal/workload"
	"repro/internal/xmlstream"
)

func main() {
	// --- The document owner's side -------------------------------------
	doc := mustParse(`
<library>
  <book shelf="A1">
    <title>Streaming access control</title>
    <price>42</price>
    <internal><purchase-cost>17</purchase-cost></internal>
  </book>
  <book shelf="B2">
    <title>Smart card engineering</title>
    <price>35</price>
    <internal><purchase-cost>11</purchase-cost></internal>
  </book>
</library>`)

	key, err := secure.NewDocKey()
	if err != nil {
		log.Fatal(err)
	}

	store := dsp.NewMemStore() // the untrusted DSP
	publisher := &proxy.Publisher{Store: store}
	info, err := publisher.PublishDocument(doc, docenc.EncodeOptions{
		DocID: "library",
		Key:   key,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %q: %d nodes, %d stored bytes (%d of index)\n",
		"library", info.Nodes, info.StoredBytes, info.IndexBytes)

	// The owner grants a customer everything except the internal records.
	rules := workload.MustParseRules(`
subject customer
doc library
default +
- //internal`)
	if err := publisher.GrantRules(key, rules); err != nil {
		log.Fatal(err)
	}

	// --- The customer's side --------------------------------------------
	// The customer's smart card holds the document key (obtained out of
	// band — see the collaborative example for the PKI flow).
	c := card.New(card.EGate)
	if err := c.PutKey("library", key); err != nil {
		log.Fatal(err)
	}
	terminal := &proxy.Terminal{Store: store, Card: c}
	if err := terminal.InstallRules("customer", "library"); err != nil {
		log.Fatal(err)
	}

	// Full authorized view.
	res, err := terminal.Query("customer", "library", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nauthorized view:")
	fmt.Println(res.XML())

	// A pull query: only matching subtrees are delivered — and thanks to
	// the skip index, non-matching subtrees are never even fetched.
	res, err = terminal.Query("customer", "library", `//book[title = "Smart card engineering"]/price`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nquery result (//book[title = \"Smart card engineering\"]/price):")
	fmt.Println(res.XML())
	fmt.Printf("\nfetched %d of %d blocks; simulated e-gate time %v (transfer %v, crypto %v)\n",
		res.Stats.BlocksFetched, res.Stats.BlocksTotal,
		res.Stats.Time.Total().Round(1e6),
		res.Stats.Time.Transfer.Round(1e6),
		res.Stats.Time.Crypto.Round(1e6))
}

func mustParse(src string) *xmlstream.Node {
	evs, err := xmlstream.Parse([]byte(src))
	if err != nil {
		log.Fatal(err)
	}
	tree, err := xmlstream.BuildTree(evs)
	if err != nil {
		log.Fatal(err)
	}
	return tree
}
