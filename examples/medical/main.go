// Medical folder — the paper's motivating healthcare scenario: "the
// exchange of medical information is traditionally ruled by predefined
// sharing policies, [but] these rules may suffer exceptions in particular
// situations (e.g., in case of emergency) and may evolve over time".
//
// One encrypted folder serves three very different audiences: the
// treating doctor (everything but administrative identifiers), a
// researcher (only asthma visits, no identities), and an emergency
// responder (exactly the emergency record and the patient's name). The
// emergency profile also shows the skip index at work: visit subtrees can
// never satisfy its rules, so the card never fetches them.
//
// Run with: go run ./examples/medical
package main

import (
	"fmt"
	"log"

	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/proxy"
	"repro/internal/secure"
	"repro/internal/workload"
)

func main() {
	folder := workload.MedicalFolder(workload.MedicalConfig{
		Seed: 7, Patients: 12, VisitsPerPatient: 4,
	})
	key, err := secure.NewDocKey()
	if err != nil {
		log.Fatal(err)
	}
	store := dsp.NewMemStore()
	publisher := &proxy.Publisher{Store: store}
	if _, err := publisher.PublishDocument(folder, docenc.EncodeOptions{
		DocID: "folder", Key: key, MinSkipBytes: 32,
	}); err != nil {
		log.Fatal(err)
	}

	profiles := map[string]string{
		"doctor": `
subject doctor
doc folder
default -
+ //patient
- //ssn
- //contact`,
		"researcher": `
subject researcher
doc folder
default -
+ //visit[diagnosis = "asthma"]
- //report`,
		"emergency": `
subject emergency
doc folder
default -
+ //emergency
+ //patient/name`,
	}

	for _, who := range []string{"doctor", "researcher", "emergency"} {
		rs := workload.MustParseRules(profiles[who])
		if err := publisher.GrantRules(key, rs); err != nil {
			log.Fatal(err)
		}
		c := card.New(card.EGate)
		if err := c.PutKey("folder", key); err != nil {
			log.Fatal(err)
		}
		term := &proxy.Terminal{Store: store, Card: c}
		if err := term.InstallRules(who, "folder"); err != nil {
			log.Fatal(err)
		}

		query := ""
		if who == "emergency" {
			// The responder asks for one patient, by the card.
			query = `//patient[@id = "p003"]`
		}
		res, err := term.Query(who, "folder", query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s view ===\n", who)
		fmt.Printf("fetched %d/%d blocks, skipped %d subtrees, card RAM peak %dB\n",
			res.Stats.BlocksFetched, res.Stats.BlocksTotal,
			res.Stats.Session.Core.SkippedSubtrees, res.Stats.Session.RAMPeak)
		if who == "emergency" {
			fmt.Println(res.XML())
		} else {
			summarize(res)
		}
		fmt.Println()
	}
}

func summarize(res *proxy.Result) {
	if res.Tree == nil {
		fmt.Println("(nothing visible)")
		return
	}
	fmt.Printf("visible: %d patients, %d visits, %d diagnoses, %d ssn\n",
		len(res.Tree.Find("patient")), len(res.Tree.Find("visit")),
		len(res.Tree.Find("diagnosis")), len(res.Tree.Find("ssn")))
}
