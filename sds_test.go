package sds

import (
	"strings"
	"testing"
)

const testDoc = `
<folder>
  <patient id="p1">
    <name>Ann</name>
    <ssn>123-45-678</ssn>
    <visit><diagnosis>flu</diagnosis></visit>
  </patient>
  <patient id="p2">
    <name>Bob</name>
    <ssn>999-99-999</ssn>
    <visit><diagnosis>asthma</diagnosis></visit>
  </patient>
</folder>`

const testRules = `
subject nurse
doc folder
default +
- //ssn`

func TestFilterLibraryPath(t *testing.T) {
	doc, err := ParseXML([]byte(testDoc))
	if err != nil {
		t.Fatal(err)
	}
	rules, err := ParseRules(testRules)
	if err != nil {
		t.Fatal(err)
	}
	view, err := Filter(doc, rules, "")
	if err != nil {
		t.Fatal(err)
	}
	xml, err := SerializeXML(view, "")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(xml, "ssn") {
		t.Errorf("filtered view leaks ssn: %s", xml)
	}
	if !strings.Contains(xml, "Ann") || !strings.Contains(xml, "asthma") {
		t.Errorf("filtered view lost permitted content: %s", xml)
	}

	// With a query.
	view, err = Filter(doc, rules, `//patient[@id = "p2"]/name`)
	if err != nil {
		t.Fatal(err)
	}
	xml, _ = SerializeXML(view, "")
	if strings.Contains(xml, "Ann") || !strings.Contains(xml, "Bob") {
		t.Errorf("query view wrong: %s", xml)
	}
}

func TestFullCardPath(t *testing.T) {
	doc, err := ParseXML([]byte(testDoc))
	if err != nil {
		t.Fatal(err)
	}
	rules, err := ParseRules(testRules)
	if err != nil {
		t.Fatal(err)
	}
	key := KeyFromSeed("facade-test")
	store := NewMemStore()

	if err := Publish(store, doc, "folder", key); err != nil {
		t.Fatal(err)
	}
	if err := Grant(store, key, rules); err != nil {
		t.Fatal(err)
	}
	c := NewCard(EGate)
	if err := Provision(store, c, "folder", "nurse", key); err != nil {
		t.Fatal(err)
	}
	res, err := QueryCard(store, c, "nurse", "folder", "")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.XML(), "ssn") {
		t.Error("card path leaks ssn")
	}
	// The card path and the library path must agree.
	libView, err := Filter(doc, rules, "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tree.Equal(libView) {
		t.Error("card and library paths disagree")
	}
}

// TestRepublishTopLevel exercises the public update path: publish,
// delta re-publish, and a card query that sees the new version.
func TestRepublishTopLevel(t *testing.T) {
	store := NewMemStore()
	key := KeyFromSeed("sds-republish")
	v1, err := ParseXML([]byte(`<a><b>the first version body</b><c>constant tail text</c></a>`))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ParseXML([]byte(`<a><b>THE OTHER VERSION BODY</b><c>constant tail text</c></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if err := PublishStream(store, v1, "doc", key); err != nil {
		t.Fatal(err)
	}
	ri, err := Republish(store, v2, "doc", key)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Version != 1 {
		t.Fatalf("republished version %d, want 1", ri.Version)
	}
	rules, _ := ParseRules("subject u\ndefault +")
	rules.DocID = "doc"
	if err := Grant(store, key, rules); err != nil {
		t.Fatal(err)
	}
	c := NewCard(Modern)
	if err := Provision(store, c, "doc", "u", key); err != nil {
		t.Fatal(err)
	}
	res, err := QueryCard(store, c, "u", "doc", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 || !strings.Contains(res.XML(), "THE OTHER VERSION BODY") {
		t.Fatalf("query did not see the republished version: v%d %q", res.Version, res.XML())
	}
}

func TestGrantRequiresDocID(t *testing.T) {
	rules, _ := ParseRules("subject u\ndefault +")
	if err := Grant(NewMemStore(), KeyFromSeed("k"), rules); err == nil {
		t.Error("Grant without DocID must fail")
	}
}

func TestFilterNothingVisible(t *testing.T) {
	doc, _ := ParseXML([]byte(`<a><b>x</b></a>`))
	rules, _ := ParseRules("subject u\ndefault -")
	view, err := Filter(doc, rules, "")
	if err != nil {
		t.Fatal(err)
	}
	if view != nil {
		t.Errorf("closed policy must yield nil, got %v", view)
	}
}

func TestFilterBadQuery(t *testing.T) {
	doc, _ := ParseXML([]byte(`<a/>`))
	rules, _ := ParseRules("subject u\ndefault +")
	if _, err := Filter(doc, rules, "not a query"); err == nil {
		t.Error("bad query accepted")
	}
}
