// Package sds is the public face of the safe-data-sharing platform: a Go
// reproduction of Bouganim, Cremarenco, Dang Ngoc, Dieu and Pucheral,
// "Safe Data Sharing and Data Dissemination on Smart Devices" (SIGMOD
// 2005) and of the client-based XML access-control engine it demonstrates
// (Bouganim, Dang Ngoc, Pucheral, VLDB 2004).
//
// The platform moves access control from the server to a Secure Operating
// Environment (a smart card) on the client: documents live encrypted on
// an untrusted store, and the card decrypts, verifies and filters them in
// streaming fashion under dynamic, subject-specific rules — with a skip
// index so that forbidden or irrelevant subtrees are neither transferred
// nor decrypted.
//
// Three levels of use:
//
//   - pure library: Filter applies a rule set (and optional query) to an
//     in-memory document — the paper's evaluator without any hardware
//     simulation;
//   - single process, full fidelity: NewMemStore + NewCard + Terminal run
//     the complete publish/provision/query flow with encryption,
//     integrity, skip index and simulated card costs (see
//     examples/quickstart);
//   - distributed: cmd/dspd serves the store over TCP, cmd/sdsctl drives
//     it (see README.md).
//
// The subpackages under internal/ are the system's real structure
// (DESIGN.md maps them); this package re-exports the surface a client
// application needs.
package sds

import (
	"fmt"

	"repro/internal/accessrule"
	"repro/internal/card"
	"repro/internal/core"
	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/fleet"
	"repro/internal/gateway"
	"repro/internal/proxy"
	"repro/internal/secure"
	"repro/internal/soe"
	"repro/internal/xmlstream"
	"repro/internal/xpath"
)

// Core model types.
type (
	// Document is an XML document tree (text nodes have empty Name;
	// attribute pseudo-elements are children named "@attr").
	Document = xmlstream.Node
	// RuleSet is a subject's access-control policy for a document.
	RuleSet = accessrule.RuleSet
	// Rule is one <sign, subject, object> access rule.
	Rule = accessrule.Rule
	// Query is a parsed XP{[],*,//} expression.
	Query = xpath.Path
	// Key is the symmetric material protecting one document.
	Key = secure.DocKey
	// Card is a simulated smart card (the SOE).
	Card = card.Card
	// CardProfile is a card hardware model.
	CardProfile = card.Profile
	// Store is the untrusted document store (DSP).
	Store = dsp.Store
	// StoreCache is an LRU block cache in front of a Store, with
	// hit/miss counters (dsp.Cache).
	StoreCache = dsp.Cache
	// CacheStats is a snapshot of a StoreCache's counters.
	CacheStats = dsp.CacheStats
	// StorePool is a fixed-size pool of connections to a dspd server;
	// it implements Store for concurrent fan-out.
	StorePool = dsp.Pool
	// FileStore is the durable store: the sharded in-memory tier kept
	// alive by per-shard WAL segments (one append mutex and group-commit
	// batcher per shard), with crash recovery (parallel segment replay,
	// torn-tail truncation), background streaming per-shard checkpoints,
	// a directory lock against double-open, and automatic migration of
	// the older single-file layout. On unix builds checkpoint images are
	// mmap'd and checkpoint-resident blocks are served as pinned views
	// into the mapping — no heap copy between the page cache and the
	// server's writev — and on linux contiguous cold runs go onto the
	// wire with sendfile(2), never entering user space at all.
	FileStore = dsp.FileStore
	// FileStoreOptions tunes a FileStore (shard/segment count, fsync
	// policy, checkpoint budget, recovery parallelism, DisableMmap,
	// DisableSendfile).
	FileStoreOptions = dsp.FileStoreOptions
	// FileStoreStats snapshots a FileStore's durability counters,
	// including SegmentCount, RecoveryDuration, LastCheckpointDuration,
	// the mapped-tier gauges (MappedBytes, MmapReads/HeapReads,
	// FooterMigrations, MadviseCalls), the sendfile cold-serve counters
	// (SendfileReads/SendfileBytes/SendfileFallbacks) and whether the
	// open migrated a legacy single-file layout.
	FileStoreStats = dsp.FileStoreStats
	// BlockFrame is the pooled response of Client.ReadBlocksFrame: its
	// Blocks alias one reusable buffer that Release returns to the pool;
	// CopyOut detaches a block that must outlive the frame.
	BlockFrame = dsp.BlockFrame
	// StoreServer serves a Store over TCP with per-connection request
	// pipelining and a bounded worker pool.
	StoreServer = dsp.Server
	// StoreServerConfig tunes a StoreServer's concurrency.
	StoreServerConfig = dsp.ServerConfig
	// PullSession is the restartable unit under Terminal and Gateway:
	// one card plus its prepared pull pipeline, provisioned once and
	// reusable across queries (Reset/Close). Terminals make one per
	// query; the fleet pools them per subject.
	PullSession = proxy.Session
	// Terminal orchestrates pull queries for one card. Setting its
	// Prefetch field (see DefaultPrefetch) turns the pull loop into a
	// two-stage prefetching pipeline: batched block runs are fetched
	// speculatively and overlapped with card evaluation.
	Terminal = proxy.Terminal
	// Publisher encodes and uploads documents and rule sets. Besides
	// the buffered PublishDocument it offers PublishStream (the
	// bounded-memory io-driven path) and Republish (block-level delta
	// re-publication: only changed blocks travel).
	Publisher = proxy.Publisher
	// RepublishInfo describes a delta re-publication (changed blocks,
	// uploaded bytes, negotiated version).
	RepublishInfo = proxy.RepublishInfo
	// StoreUpdater is the optional store interface behind delta
	// re-publish: the atomic begin/put-blocks/commit handshake.
	// MemStore, Cache, Client and Pool all implement it.
	StoreUpdater = dsp.DocUpdater
	// Result is a query outcome with its cost statistics.
	Result = proxy.Result
	// Gateway is the card-fleet tier: it serves concurrent pull queries
	// for many subjects over one shared store, provisioning one card
	// per subject on demand.
	Gateway = fleet.Gateway
	// GatewayConfig assembles a Gateway.
	GatewayConfig = fleet.Config
	// GatewayStats aggregates one subject's usage at the gateway.
	GatewayStats = fleet.SubjectStats
	// GatewayPoolStats aggregates the gateway's session pool across all
	// subjects (occupancy, recycles, retires, reaping, rate limiting).
	GatewayPoolStats = fleet.PoolStats
	// KeySource resolves document keys during gateway provisioning.
	KeySource = fleet.KeySource
	// GatewayServer serves a Gateway over TCP with the gatewayd wire
	// protocol (cmd/gatewayd is the ready-made daemon).
	GatewayServer = gateway.Server
	// GatewayServerConfig tunes a GatewayServer's concurrency.
	GatewayServerConfig = gateway.ServerConfig
	// GatewayClient talks to a gatewayd over one multiplexed connection.
	GatewayClient = gateway.Client
	// GatewayWireSession is one subject binding on a GatewayClient; the
	// card state it stands for is pooled server-side.
	GatewayWireSession = gateway.Session
	// GatewaySnapshot is a gatewayd observability snapshot (wire
	// traffic, pool occupancy, per-subject meters, cache and store
	// stats) — what /stats serves.
	GatewaySnapshot = gateway.Snapshot
	// StoreServerStats is a dspd observability snapshot (document
	// count, cache counters, durable-tier counters).
	StoreServerStats = dsp.ServerStats
	// EncodeOptions tunes document encryption and indexing.
	EncodeOptions = docenc.EncodeOptions
	// SessionOptions tunes a card session (ablation switches).
	SessionOptions = soe.Options
)

// ErrStoreLocked reports that a durable store directory is already open
// by another FileStore (this process or another); see NewFileStore.
var ErrStoreLocked = dsp.ErrStoreLocked

// Card hardware profiles.
var (
	// EGate models the paper's Axalto e-gate: 1 KB applet RAM, 2 KB/s
	// link.
	EGate = card.EGate
	// Modern models a contemporary secure element.
	Modern = card.Modern
)

// Rule signs.
const (
	Permit = accessrule.Permit
	Deny   = accessrule.Deny
)

// DefaultPrefetch is the pipeline depth that amortizes a network round
// trip without inflating speculation waste (Terminal.Prefetch,
// GatewayConfig.Prefetch).
const DefaultPrefetch = proxy.DefaultPrefetch

// ParseXML parses an XML document.
func ParseXML(src []byte) (*Document, error) {
	evs, err := xmlstream.Parse(src)
	if err != nil {
		return nil, err
	}
	return xmlstream.BuildTree(evs)
}

// SerializeXML renders a document (indent "" = compact).
func SerializeXML(doc *Document, indent string) (string, error) {
	return xmlstream.Serialize(doc.Events(), xmlstream.WriterOptions{Indent: indent})
}

// ParseRules parses the textual rule-set format:
//
//	subject nurse
//	doc folder
//	default -
//	+ /folder
//	- //ssn
func ParseRules(text string) (*RuleSet, error) {
	return accessrule.ParseSet(text)
}

// ParseQuery parses an absolute XP{[],*,//} expression.
func ParseQuery(expr string) (*Query, error) {
	return xpath.Parse(expr)
}

// NewKey draws a fresh document key.
func NewKey() (Key, error) { return secure.NewDocKey() }

// KeyFromSeed derives a deterministic key (tests, reproducible demos).
func KeyFromSeed(seed string) Key { return secure.KeyFromSeed(seed) }

// NewMemStore returns an in-process untrusted store (sharded for
// concurrent access).
func NewMemStore() *dsp.MemStore { return dsp.NewMemStore() }

// NewFileStore opens (or creates) a durable untrusted store in dir: a
// segmented WAL-backed FileStore that survives crashes and restarts
// (cmd/dspd serves one with -store). A directory already open fails
// with ErrStoreLocked; a lock left by a dead process is reclaimed.
func NewFileStore(dir string) (*FileStore, error) { return dsp.NewFileStore(dir) }

// NewFileStoreOptions is NewFileStore with explicit tuning.
func NewFileStoreOptions(dir string, opts FileStoreOptions) (*FileStore, error) {
	return dsp.NewFileStoreOptions(dir, opts)
}

// NewStoreCache fronts a store with an LRU block cache holding at most
// maxBytes of encrypted blocks (<= 0 selects the default budget).
func NewStoreCache(s Store, maxBytes int64) *StoreCache { return dsp.NewCache(s, maxBytes) }

// NewStoreServer wraps a store in a TCP server (see cmd/dspd for the
// ready-made daemon).
func NewStoreServer(s Store) *StoreServer { return dsp.NewServer(s) }

// NewStoreServerConfig wraps a store in a TCP server with explicit
// concurrency tuning.
func NewStoreServerConfig(s Store, cfg StoreServerConfig) *StoreServer {
	return dsp.NewServerConfig(s, cfg)
}

// DialStore connects to a dspd server over one connection.
func DialStore(addr string) (*dsp.Client, error) { return dsp.Dial(addr) }

// DialStorePool connects size pooled connections to a dspd server so
// many goroutines can fan out over one shared Store (<= 0 selects the
// default size).
func DialStorePool(addr string, size int) (*StorePool, error) { return dsp.DialPool(addr, size) }

// ReadBlockRange fetches a contiguous run of blocks, in one round trip
// when the store supports batched reads and block-by-block otherwise.
func ReadBlockRange(s Store, docID string, start, count int) ([][]byte, error) {
	return dsp.ReadBlockRange(s, docID, start, count)
}

// NewCard returns a provisionable simulated card.
func NewCard(profile CardProfile) *Card { return card.New(profile) }

// Filter applies a rule set (and optional query, "" for none) to an
// in-memory document using the streaming engine, returning the authorized
// view (nil when nothing is visible). This is the paper's evaluator as a
// plain library: no encryption, no card simulation.
func Filter(doc *Document, rules *RuleSet, query string) (*Document, error) {
	var q *Query
	if query != "" {
		var err error
		q, err = xpath.Parse(query)
		if err != nil {
			return nil, err
		}
	}
	out, _, err := core.Filter(doc.Events(), rules, q)
	return out, err
}

// Publish encrypts, indexes and uploads a document in one call.
func Publish(store Store, doc *Document, docID string, key Key) error {
	p := &Publisher{Store: store}
	_, err := p.PublishDocument(doc, EncodeOptions{DocID: docID, Key: key})
	return err
}

// PublishStream is Publish over the streaming pipeline: the document is
// encoded, indexed and encrypted in one bounded-memory pass, and blocks
// go to the store as they are produced (atomically, via the update
// handshake when the store supports it). Re-publishing an existing
// document negotiates the next version automatically.
func PublishStream(store Store, doc *Document, docID string, key Key) error {
	p := &Publisher{Store: store}
	_, err := p.PublishStream(doc, EncodeOptions{DocID: docID, Key: key})
	return err
}

// Republish uploads a new version of a published document as a
// block-level delta: the stored version is read back, authenticated and
// diffed against the new tree, and only the changed block runs travel to
// the store — atomically, with the version bumped. The returned info
// reports how much of the document actually moved.
func Republish(store Store, doc *Document, docID string, key Key) (*RepublishInfo, error) {
	p := &Publisher{Store: store}
	return p.Republish(doc, EncodeOptions{DocID: docID, Key: key})
}

// Grant seals and uploads a subject's rule set for a document.
func Grant(store Store, key Key, rules *RuleSet) error {
	if rules.DocID == "" {
		return fmt.Errorf("sds: the rule set must name its document (RuleSet.DocID)")
	}
	p := &Publisher{Store: store}
	return p.GrantRules(key, rules)
}

// Provision installs a document key and the subject's current rights on a
// card.
func Provision(store Store, c *Card, docID, subject string, key Key) error {
	if err := c.PutKey(docID, key); err != nil {
		return err
	}
	t := &Terminal{Store: store, Card: c}
	return t.InstallRules(subject, docID)
}

// QueryCard runs a pull query through a provisioned card ("" = the full
// authorized view).
func QueryCard(store Store, c *Card, subject, docID, query string) (*Result, error) {
	t := &Terminal{Store: store, Card: c}
	return t.Query(subject, docID, query)
}

// QueryCardPipelined is QueryCard over the prefetching pipeline: block
// runs of up to prefetch blocks (<= 0 selects DefaultPrefetch) are
// fetched in batched round trips, overlapped with card evaluation — the
// right shape when the store is at the end of a network link.
func QueryCardPipelined(store Store, c *Card, subject, docID, query string, prefetch int) (*Result, error) {
	if prefetch <= 0 {
		prefetch = DefaultPrefetch
	}
	t := &Terminal{Store: store, Card: c, Prefetch: prefetch}
	return t.Query(subject, docID, query)
}

// NewGateway builds a card-fleet gateway over a shared store: concurrent
// Query calls for many subjects, bounded admission, on-demand
// provisioning, per-subject meters. FixedGatewayKeys adapts a static key
// table into the config's key source.
func NewGateway(cfg GatewayConfig) (*Gateway, error) { return fleet.New(cfg) }

// FixedGatewayKeys adapts a docID→key table into a KeySource.
func FixedGatewayKeys(keys map[string]Key) KeySource { return fleet.FixedKeys(keys) }

// NewGatewayServer wraps a Gateway in a TCP server speaking the
// gatewayd wire protocol (see cmd/gatewayd for the ready-made daemon
// with the /stats HTTP endpoint).
func NewGatewayServer(g *Gateway, cfg GatewayServerConfig) *GatewayServer {
	return gateway.NewServer(g, cfg)
}

// DialGateway connects to a gatewayd server; Open a session per subject
// and Query through it (see examples/gateway).
func DialGateway(addr string) (*GatewayClient, error) { return gateway.Dial(addr) }
