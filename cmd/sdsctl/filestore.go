package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/docenc"
	"repro/internal/dsp"
)

// fileStore persists a MemStore image to a single file, so consecutive
// sdsctl invocations compose (publish, then grant, then query). The
// format mirrors the store's threat model: everything in it is already
// encrypted and authenticated; the file needs no protection of its own.
type fileStore struct {
	*dsp.MemStore
	path string

	// shadow copies for flushing (the file layer tracks what it put in;
	// block-level updates refresh their document via MemStore.Snapshot).
	docs  map[string][]byte    // container images
	rules map[string]fileRules // sealed rule blobs
	// updating maps in-flight update tokens to their document id.
	updating map[uint64]string
}

type fileRules struct {
	docID, subject string
	version        uint32
	sealed         []byte
}

func newFileStore(path string) (*fileStore, error) {
	s := &fileStore{
		MemStore: dsp.NewMemStore(),
		path:     path,
		docs:     make(map[string][]byte),
		rules:    make(map[string]fileRules),
		updating: make(map[uint64]string),
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	if err := s.load(data); err != nil {
		return nil, fmt.Errorf("sdsctl: corrupt store file %s: %w", path, err)
	}
	return s, nil
}

// PutDocument shadows the image for persistence.
func (s *fileStore) PutDocument(c *docenc.Container) error {
	if err := s.MemStore.PutDocument(c); err != nil {
		return err
	}
	img, err := c.MarshalBinary()
	if err != nil {
		return err
	}
	s.docs[c.Header.DocID] = img
	return nil
}

// PutRuleSet shadows the blob for persistence.
func (s *fileStore) PutRuleSet(docID, subject string, version uint32, sealed []byte) error {
	if err := s.MemStore.PutRuleSet(docID, subject, version, sealed); err != nil {
		return err
	}
	s.rules[docID+"\x00"+subject] = fileRules{
		docID: docID, subject: subject, version: version,
		sealed: append([]byte(nil), sealed...),
	}
	return nil
}

// BeginUpdate shadows the handshake so the commit can refresh the
// document's persisted image (the embedded MemStore assembles the new
// container; the file layer only learns which document moved).
func (s *fileStore) BeginUpdate(h docenc.Header, baseVersion uint32) (uint64, error) {
	token, err := s.MemStore.BeginUpdate(h, baseVersion)
	if err != nil {
		return 0, err
	}
	s.updating[token] = h.DocID
	return token, nil
}

// CommitUpdate refreshes the shadow image from the committed container.
func (s *fileStore) CommitUpdate(token uint64) error {
	docID := s.updating[token]
	delete(s.updating, token)
	if err := s.MemStore.CommitUpdate(token); err != nil {
		return err
	}
	c, err := s.MemStore.Snapshot(docID)
	if err != nil {
		return err
	}
	img, err := c.MarshalBinary()
	if err != nil {
		return err
	}
	s.docs[docID] = img
	return nil
}

// AbortUpdate drops the shadow bookkeeping with the staged update.
func (s *fileStore) AbortUpdate(token uint64) error {
	delete(s.updating, token)
	return s.MemStore.AbortUpdate(token)
}

// flush writes the store image via a temp file and an atomic rename, so
// a crash mid-write can never leave a torn store behind: consumers see
// either the previous image or the new one, nothing in between.
func (s *fileStore) flush() error {
	var out []byte
	out = append(out, 'S', 'D', 'S', 'F', 1)
	out = binary.AppendUvarint(out, uint64(len(s.docs)))
	for _, img := range s.docs {
		out = appendBytes(out, img)
	}
	out = binary.AppendUvarint(out, uint64(len(s.rules)))
	for _, r := range s.rules {
		out = appendString(out, r.docID)
		out = appendString(out, r.subject)
		out = binary.AppendUvarint(out, uint64(r.version))
		out = appendBytes(out, r.sealed)
	}
	tmp, err := os.CreateTemp(filepath.Dir(s.path), filepath.Base(s.path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(out); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	// The data must be durable before the rename publishes it, or the
	// rename could survive a crash that the contents did not.
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}

func (s *fileStore) load(data []byte) error {
	if len(data) < 5 || string(data[:4]) != "SDSF" || data[4] != 1 {
		return fmt.Errorf("bad magic")
	}
	r := &byteReader{data: data, pos: 5}
	nDocs := r.uvarint()
	for i := uint64(0); i < nDocs && r.err == nil; i++ {
		img := r.bytes()
		if r.err != nil {
			break
		}
		c, err := docenc.UnmarshalContainer(img)
		if err != nil {
			return err
		}
		if err := s.PutDocument(c); err != nil {
			return err
		}
	}
	nRules := r.uvarint()
	for i := uint64(0); i < nRules && r.err == nil; i++ {
		docID := r.string()
		subject := r.string()
		version := r.uvarint()
		sealed := r.bytes()
		if r.err != nil {
			break
		}
		if err := s.PutRuleSet(docID, subject, uint32(version), sealed); err != nil {
			return err
		}
	}
	return r.err
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

type byteReader struct {
	data []byte
	pos  int
	err  error
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.err = fmt.Errorf("truncated varint at %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *byteReader) bytes() []byte {
	l := r.uvarint()
	if r.err != nil {
		return nil
	}
	if r.pos+int(l) > len(r.data) {
		r.err = fmt.Errorf("truncated field at %d", r.pos)
		return nil
	}
	b := r.data[r.pos : r.pos+int(l)]
	r.pos += int(l)
	return b
}

func (r *byteReader) string() string { return string(r.bytes()) }
