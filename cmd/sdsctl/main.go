// Command sdsctl drives the full platform from the command line: publish
// encrypted documents, grant rule sets, and query through a simulated
// smart card — against either an in-process store or a running dspd.
//
// Usage:
//
//	sdsctl [-store ADDR] [-conns N] [-profile egate|modern] <command> [args]
//
// Commands:
//
//	publish    -doc ID -in FILE -seed SEED     encrypt & upload an XML file
//	republish  -doc ID -in FILE -seed SEED     delta re-publish a new version
//	                                           (only changed blocks travel)
//	grant      -doc ID -seed SEED -rules FILE  seal & upload a rule set
//	query      -doc ID -seed SEED -subject S [-query XPATH] [-noskip] [-prefetch K]
//	ls                                         list stored documents
//	stats      [-gateway URL]                  pretty-print a gatewayd /stats
//	                                           snapshot, or (with the global
//	                                           -store ADDR) a dspd store snapshot
//
// The document key is derived from -seed (a stand-in for the PKI
// exchange, which examples/collaborative demonstrates in full).
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"strings"

	"repro/internal/accessrule"
	"repro/internal/card"
	"repro/internal/docenc"
	"repro/internal/dsp"
	"repro/internal/proxy"
	"repro/internal/secure"
	"repro/internal/soe"
	"repro/internal/xmlstream"
)

// statePath is the durable store directory (per-shard WAL segments +
// checkpoints, see dsp.FileStore) consecutive sdsctl invocations
// compose through: publish, then grant, then query. A directory in the
// older single-file layout is migrated to segments on first open.
const statePath = "sdsctl.store"

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdsctl: ")

	storeAddr := flag.String("store", "", "dspd address (empty: local file-backed store)")
	conns := flag.Int("conns", 1, "pooled connections to the dspd (with -store)")
	profile := flag.String("profile", "egate", "card profile: egate or modern")
	flag.Parse()
	if flag.NArg() < 1 {
		log.Fatal("missing command (publish, republish, grant, query, ls)")
	}

	cmd := flag.Arg(0)
	args := flag.Args()[1:]

	// stats talks to running daemons, never the local state directory, so
	// it is handled before a store is opened (or locked).
	if cmd == "stats" {
		runStats(args, *storeAddr, *conns)
		return
	}

	store, closeStore := openStore(*storeAddr, *conns)
	defer closeStore()

	switch cmd {
	case "publish":
		fs := flag.NewFlagSet("publish", flag.ExitOnError)
		docID := fs.String("doc", "", "document id")
		in := fs.String("in", "", "XML file")
		seed := fs.String("seed", "", "key seed")
		block := fs.Int("block", docenc.DefaultBlockPlain, "plaintext block size")
		_ = fs.Parse(args)
		requireAll(map[string]string{"doc": *docID, "in": *in, "seed": *seed})
		src, err := os.ReadFile(*in)
		if err != nil {
			log.Fatal(err)
		}
		evs, err := xmlstream.Parse(src)
		if err != nil {
			log.Fatal(err)
		}
		tree, err := xmlstream.BuildTree(evs)
		if err != nil {
			log.Fatal(err)
		}
		pub := &proxy.Publisher{Store: store}
		info, err := pub.PublishDocument(tree, docenc.EncodeOptions{
			DocID: *docID, Key: secure.KeyFromSeed(*seed), BlockPlain: *block,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published %s: %d nodes, %d blocks, %d stored bytes (index %d, dict %d)\n",
			*docID, info.Nodes, (info.PayloadBytes+*block-1)/(*block), info.StoredBytes,
			info.IndexBytes, info.DictBytes)

	case "republish":
		fs := flag.NewFlagSet("republish", flag.ExitOnError)
		docID := fs.String("doc", "", "document id")
		in := fs.String("in", "", "XML file (the new version)")
		seed := fs.String("seed", "", "key seed")
		_ = fs.Parse(args)
		requireAll(map[string]string{"doc": *docID, "in": *in, "seed": *seed})
		src, err := os.ReadFile(*in)
		if err != nil {
			log.Fatal(err)
		}
		evs, err := xmlstream.Parse(src)
		if err != nil {
			log.Fatal(err)
		}
		tree, err := xmlstream.BuildTree(evs)
		if err != nil {
			log.Fatal(err)
		}
		pub := &proxy.Publisher{Store: store}
		ri, err := pub.Republish(tree, docenc.EncodeOptions{
			DocID: *docID, Key: secure.KeyFromSeed(*seed),
		})
		if err != nil {
			log.Fatal(err)
		}
		how := fmt.Sprintf("%d/%d blocks in %d runs", ri.ChangedBlocks, ri.TotalBlocks, ri.ChangedRuns)
		if ri.Fallback {
			how = "whole container (store lacks the patch protocol)"
		}
		fmt.Printf("republished %s at version %d: %s, %d bytes uploaded\n",
			*docID, ri.Version, how, ri.BytesUploaded)

	case "grant":
		fs := flag.NewFlagSet("grant", flag.ExitOnError)
		docID := fs.String("doc", "", "document id")
		seed := fs.String("seed", "", "key seed")
		rulesFile := fs.String("rules", "", "rule-set file (textual format)")
		_ = fs.Parse(args)
		requireAll(map[string]string{"doc": *docID, "seed": *seed, "rules": *rulesFile})
		text, err := os.ReadFile(*rulesFile)
		if err != nil {
			log.Fatal(err)
		}
		rs, err := accessrule.ParseSet(string(text))
		if err != nil {
			log.Fatal(err)
		}
		rs.DocID = *docID
		pub := &proxy.Publisher{Store: store}
		if err := pub.GrantRules(secure.KeyFromSeed(*seed), rs); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("granted %d rules (version %d) to %s on %s\n",
			len(rs.Rules), rs.Version, rs.Subject, *docID)

	case "query":
		fs := flag.NewFlagSet("query", flag.ExitOnError)
		docID := fs.String("doc", "", "document id")
		seed := fs.String("seed", "", "key seed")
		subject := fs.String("subject", "", "subject")
		query := fs.String("query", "", "XPath query (optional)")
		noskip := fs.Bool("noskip", false, "disable the skip index")
		prefetch := fs.Int("prefetch", 0,
			"prefetching pipeline depth in blocks (0 = serial one-block round trips)")
		_ = fs.Parse(args)
		requireAll(map[string]string{"doc": *docID, "seed": *seed, "subject": *subject})
		c := card.New(cardProfile(*profile))
		if err := c.PutKey(*docID, secure.KeyFromSeed(*seed)); err != nil {
			log.Fatal(err)
		}
		term := &proxy.Terminal{Store: store, Card: c,
			Options: soe.Options{DisableSkip: *noskip}, Prefetch: *prefetch}
		if err := term.InstallRules(*subject, *docID); err != nil {
			log.Fatal(err)
		}
		res, err := term.Query(*subject, *docID, *query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.XML())
		fmt.Fprintf(os.Stderr,
			"blocks %d/%d (%d speculative wasted), skipped %d subtrees, card RAM peak %dB, simulated %s time %v\n",
			res.Stats.BlocksFetched, res.Stats.BlocksTotal, res.Stats.BlocksWasted,
			res.Stats.Session.Core.SkippedSubtrees, res.Stats.Session.RAMPeak,
			cardProfile(*profile).Name, res.Stats.Time.Total().Round(1e6))

	case "ls":
		ids, err := store.ListDocuments()
		if err != nil {
			log.Fatal(err)
		}
		for _, id := range ids {
			h, err := store.Header(id)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-20s v%-3d %6d blocks  %8d payload bytes\n",
				id, h.Version, h.NumBlocks(), h.PayloadLen)
		}

	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

// runStats fetches and pretty-prints an observability snapshot: a
// gatewayd's /stats endpoint (-gateway URL) or a dspd's store stats
// (the global -store ADDR). With both unset it explains itself.
func runStats(args []string, storeAddr string, conns int) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	gatewayURL := fs.String("gateway", "", "gatewayd stats URL (e.g. http://localhost:7081/stats)")
	_ = fs.Parse(args)

	switch {
	case *gatewayURL != "":
		u := *gatewayURL
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		if parsed, err := url.Parse(u); err == nil && parsed.Path == "" {
			u += "/stats"
		}
		resp, err := http.Get(u)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("%s: %s: %s", u, resp.Status, body)
		}
		printJSON(body)

	case storeAddr != "":
		client, err := dsp.Dial(storeAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		st, err := client.StoreStats()
		if err != nil {
			log.Fatal(err)
		}
		js, err := json.Marshal(st)
		if err != nil {
			log.Fatal(err)
		}
		printJSON(js)

	default:
		log.Fatal("stats needs a target: -gateway URL (gatewayd) or the global -store ADDR (dspd)")
	}
}

// printJSON re-indents and prints a JSON document.
func printJSON(body []byte) {
	var buf bytes.Buffer
	if err := json.Indent(&buf, body, "", "  "); err != nil {
		// Not JSON? Show it anyway — a stats command must not hide what
		// the server actually said.
		fmt.Printf("%s\n", body)
		return
	}
	fmt.Println(buf.String())
}

func cardProfile(name string) card.Profile {
	switch name {
	case "egate":
		return card.EGate
	case "modern":
		return card.Modern
	default:
		log.Fatalf("unknown profile %q", name)
		return card.Profile{}
	}
}

func requireAll(fields map[string]string) {
	for name, v := range fields {
		if v == "" {
			log.Fatalf("missing -%s", name)
		}
	}
}

func openStore(addr string, conns int) (dsp.Store, func()) {
	if addr != "" {
		if conns > 1 {
			pool, err := dsp.DialPool(addr, conns)
			if err != nil {
				log.Fatal(err)
			}
			return pool, func() { _ = pool.Close() }
		}
		client, err := dsp.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		return client, func() { _ = client.Close() }
	}
	// Earlier sdsctl versions kept the state in a flat file at the
	// same path; the durable store needs a directory there. Explain
	// instead of dying on a cryptic mkdir error.
	if fi, err := os.Stat(statePath); err == nil && !fi.IsDir() {
		log.Fatalf("%s is a store file from an older sdsctl (single-image format); "+
			"remove it (and re-publish) to let the durable store use the path as a directory",
			statePath)
	}
	// Single-shot invocations keep the WAL small, so checkpointing on
	// every exit trades a little write-off for replay-free next starts.
	fs, err := dsp.NewFileStore(statePath)
	if errors.Is(err, dsp.ErrStoreLocked) {
		log.Fatalf("%s is open in another process (a dspd or a concurrent sdsctl); "+
			"stop it or point this invocation elsewhere: %v", statePath, err)
	}
	if err != nil {
		log.Fatal(err)
	}
	return fs, func() {
		if err := fs.Checkpoint(); err != nil {
			log.Printf("checkpointing store: %v", err)
		}
		if err := fs.Close(); err != nil {
			log.Printf("closing store: %v", err)
		}
	}
}
