// Command gatewayd runs the network-facing card-fleet gateway: the
// long-running portal of the paper's deployment story, terminating many
// concurrent subject connections and mediating their pull queries
// against the untrusted store through a pool of provisioned card
// sessions (see internal/fleet and internal/gateway).
//
// Usage:
//
//	gatewayd [-addr :7080] [-http :7081] -store ADDR [-auto-keys | -keys doc=seed,...]
//
// The store is either a running dspd (-store ADDR, fronted by -conns
// pooled connections and an optional local block cache) or a local
// durable directory (-store-dir DIR) for single-box setups. Document
// keys come from -keys (an explicit docID=seed table) or -auto-keys
// (derive every key as KeyFromSeed(docID) — the convention the examples
// and benchmarks use; never deploy it beyond a demo).
//
// The HTTP listener serves GET /stats: a JSON snapshot of wire traffic,
// session-pool occupancy and recycling, per-subject meters, prefetch
// waste, the local cache's hit rate, and the backing store's WAL/fsync
// counters (pretty-print it with `sdsctl stats -gateway URL`).
//
// On SIGINT/SIGTERM the daemon drains gracefully: in-flight queries
// finish and flush, new ones are refused, and the final snapshot is
// logged before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/card"
	"repro/internal/dsp"
	"repro/internal/fleet"
	"repro/internal/gateway"
	"repro/internal/secure"
)

func main() {
	addr := flag.String("addr", ":7080", "wire listen address")
	httpAddr := flag.String("http", ":7081", "HTTP listen address for /stats (empty: disabled)")
	storeAddr := flag.String("store", "", "dspd address to mediate queries against")
	storeDir := flag.String("store-dir", "", "local durable store directory (alternative to -store)")
	conns := flag.Int("conns", dsp.DefaultPoolSize, "pooled connections to the dspd (with -store)")
	cacheMB := flag.Int("cache-mb", 32, "local LRU block cache budget in MiB over the store (0 disables)")
	prefetch := flag.Int("prefetch", 8, "pull-pipeline depth per session in blocks (0: serial)")
	profile := flag.String("profile", "modern", "card profile: egate or modern")
	keysFlag := flag.String("keys", "", "document key table: docID=seed,docID=seed,...")
	autoKeys := flag.Bool("auto-keys", false, "derive every document key as KeyFromSeed(docID) (demo convention)")
	maxConcurrent := flag.Int("max-concurrent", 0, "queries admitted at once across all subjects (0: 2×GOMAXPROCS)")
	sessionsPer := flag.Int("sessions-per-subject", 0, "pooled sessions per subject (0: default)")
	maxSubjects := flag.Int("max-subjects", 0, "distinct subjects admitted (0: unlimited)")
	subjectRate := flag.Float64("subject-rate", 0, "per-subject queries/second (0: unlimited)")
	subjectBurst := flag.Int("subject-burst", 0, "per-subject rate-limit burst (0: derived from the rate)")
	idleTimeout := flag.Duration("idle-timeout", 0, "retire sessions idle longer than this (0: keep warm forever)")
	workers := flag.Int("workers", 0, "max concurrently executing wire requests (0: 4×GOMAXPROCS)")
	depth := flag.Int("depth", 0, "per-connection pipeline depth (0: default)")
	label := flag.String("label", "", "daemon label reported in /stats")
	flag.Parse()

	log.SetPrefix("gatewayd: ")
	log.SetFlags(log.LstdFlags)

	if (*storeAddr == "") == (*storeDir == "") {
		log.Fatal("exactly one of -store ADDR or -store-dir DIR is required")
	}
	keys, err := keySource(*keysFlag, *autoKeys)
	if err != nil {
		log.Fatal(err)
	}

	// Assemble the store lease: remote pool or local durable store, with
	// an optional local read cache in front of either.
	var (
		store      dsp.Store
		pool       *dsp.Pool
		durable    *dsp.FileStore
		closeStore func()
	)
	if *storeAddr != "" {
		pool, err = dsp.DialPool(*storeAddr, *conns)
		if err != nil {
			log.Fatal(err)
		}
		store, closeStore = pool, func() { _ = pool.Close() }
	} else {
		durable, err = dsp.NewFileStore(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		store, closeStore = durable, func() { _ = durable.Close() }
	}
	defer closeStore()
	var cache *dsp.Cache
	if *cacheMB > 0 {
		cache = dsp.NewCache(store, int64(*cacheMB)<<20)
		store = cache
	}

	fl, err := fleet.New(fleet.Config{
		Store:                 store,
		Keys:                  keys,
		Profile:               cardProfile(*profile),
		MaxConcurrent:         *maxConcurrent,
		MaxSessionsPerSubject: *sessionsPer,
		MaxSubjects:           *maxSubjects,
		SubjectRate:           *subjectRate,
		SubjectBurst:          *subjectBurst,
		IdleTimeout:           *idleTimeout,
		Prefetch:              *prefetch,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := gateway.NewServer(fl, gateway.ServerConfig{
		Workers:       *workers,
		PipelineDepth: *depth,
		Label:         *label,
	})
	srv.Logf = log.Printf
	if cache != nil {
		srv.CacheStats = cache.Stats
	}
	if pool != nil {
		srv.StoreStats = pool.StoreStats
	} else if durable != nil {
		srv.StoreStats = func() (*dsp.ServerStats, error) {
			st := dsp.ServerStats{}
			if ids, err := durable.ListDocuments(); err == nil {
				st.Documents = len(ids)
			}
			ds := durable.Stats()
			st.Durable = &ds
			return &st, nil
		}
	}

	var httpSrv *http.Server
	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/stats", srv.StatsHandler())
		httpSrv = &http.Server{Addr: *httpAddr, Handler: mux}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("http: %v", err)
			}
		}()
	}

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*addr) }()
	backing := *storeAddr
	if backing == "" {
		backing = *storeDir + " (local durable)"
	}
	log.Printf("serving the card-fleet gateway on %s (store %s, stats %s)", *addr, backing, orNone(*httpAddr))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
	case s := <-sig:
		log.Printf("%v, draining", s)
		if err := srv.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}

	// Drained: log the final snapshot while the fleet is still readable,
	// then bring the fleet and the HTTP listener down.
	snap := srv.Snapshot()
	log.Printf("served %d queries over %d wire sessions; pool: %d subjects, %d recycles, %d retires, %d reaped",
		snap.Queries, snap.WireSessions, snap.Pool.Subjects, snap.Pool.Recycles, snap.Pool.Retires, snap.Pool.Reaped)
	if snap.Cache != nil {
		log.Printf("cache: %.1f%% hit rate (%d hits / %d misses)", 100*snap.CacheHitRate, snap.Cache.Hits, snap.Cache.Misses)
	}
	fl.Close()
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = httpSrv.Shutdown(ctx)
		cancel()
	}
}

// keySource builds the fleet's key channel from the flags.
func keySource(table string, auto bool) (fleet.KeySource, error) {
	if auto && table != "" {
		return nil, fmt.Errorf("-keys and -auto-keys are mutually exclusive")
	}
	if auto {
		return func(docID string) (secure.DocKey, error) {
			return secure.KeyFromSeed(docID), nil
		}, nil
	}
	if table == "" {
		return nil, fmt.Errorf("a key source is required: -keys doc=seed,... or -auto-keys")
	}
	keys := make(map[string]secure.DocKey)
	for _, pair := range strings.Split(table, ",") {
		doc, seed, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || doc == "" || seed == "" {
			return nil, fmt.Errorf("bad -keys entry %q (want docID=seed)", pair)
		}
		keys[doc] = secure.KeyFromSeed(seed)
	}
	return fleet.FixedKeys(keys), nil
}

func cardProfile(name string) card.Profile {
	switch name {
	case "egate":
		return card.EGate
	case "modern":
		return card.Modern
	default:
		log.Fatalf("unknown profile %q", name)
		return card.Profile{}
	}
}

func orNone(s string) string {
	if s == "" {
		return "disabled"
	}
	return s
}
