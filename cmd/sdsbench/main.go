// Command sdsbench runs the experiment suite and prints the tables
// recorded in EXPERIMENTS.md, optionally serializing a machine-readable
// result file (the perf-trajectory contract — see docs/BENCHMARKS.md).
//
// Usage:
//
//	sdsbench                      # run every experiment
//	sdsbench E3 E5                # run selected experiments
//	sdsbench -list                # list experiments
//	sdsbench -json out.json E9 E10 E11 E12 E13
//	                              # also write a sds-bench-result file
//	sdsbench -compare OLD NEW     # diff two result files; exit 1 on
//	                              # regression beyond -threshold
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	jsonOut := flag.String("json", "", "write a machine-readable result file to this path")
	label := flag.String("label", "", "label stored in the result file (e.g. PR6, ci)")
	commit := flag.String("commit", "", "commit hash stored in the result file (default: git HEAD)")
	compare := flag.Bool("compare", false, "compare two result files (args: OLD NEW); exit 1 on regression")
	threshold := flag.Float64("threshold", 0.25, "tolerated relative regression for -compare (0.25 = 25%)")
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args(), *threshold))
	}

	all := bench.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}

	selected := map[string]bool{}
	for _, a := range flag.Args() {
		selected[strings.ToUpper(a)] = true
	}

	result := bench.NewResult(*label, commitHash(*commit))
	ran, failed := 0, 0
	for _, e := range all {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		fmt.Printf("== %s: %s ==\n\n", e.ID, e.Name)
		rec := bench.NewRecorder()
		start := time.Now()
		tables, ok := run(e, rec)
		er := bench.ExperimentResult{
			ID:      e.ID,
			Name:    e.Name,
			WallMS:  float64(time.Since(start)) / float64(time.Millisecond),
			Failed:  !ok,
			Metrics: rec.Metrics(),
		}
		result.Experiments = append(result.Experiments, er)
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		ran++
		if !ok {
			failed++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "sdsbench: no experiment matches %v (use -list)\n", flag.Args())
		os.Exit(1)
	}
	if *jsonOut != "" {
		if err := writeResult(*jsonOut, result); err != nil {
			fmt.Fprintf(os.Stderr, "sdsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sdsbench: wrote %s\n", *jsonOut)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// run isolates experiment panics so one failure doesn't hide the rest.
func run(e bench.Experiment, rec *bench.Recorder) (tables []*bench.Table, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "sdsbench: %s failed: %v\n", e.ID, r)
		}
	}()
	return e.Run(rec), true
}

func writeResult(path string, r *bench.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.EncodeResult(f, r); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// commitHash resolves the hash to stamp into the result file: the
// explicit flag, the current git HEAD, or empty when neither exists.
func commitHash(explicit string) string {
	if explicit != "" {
		return explicit
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// runCompare loads two result files, prints the diff report and returns
// the process exit code (1 on regression or missing baseline metric).
func runCompare(args []string, threshold float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "sdsbench: -compare needs exactly two result files: OLD NEW")
		return 2
	}
	load := func(path string) (*bench.Result, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return bench.DecodeResult(f)
	}
	old, err := load(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdsbench: %s: %v\n", args[0], err)
		return 2
	}
	cur, err := load(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdsbench: %s: %v\n", args[1], err)
		return 2
	}
	rep := bench.Compare(old, cur, threshold)
	rep.Fprint(os.Stdout)
	if rep.Failed() {
		return 1
	}
	return 0
}
