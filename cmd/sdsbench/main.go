// Command sdsbench runs the experiment suite and prints the tables
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	sdsbench            # run every experiment
//	sdsbench E3 E5      # run selected experiments
//	sdsbench -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	all := bench.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}

	selected := map[string]bool{}
	for _, a := range flag.Args() {
		selected[strings.ToUpper(a)] = true
	}

	ran := 0
	for _, e := range all {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		fmt.Printf("== %s: %s ==\n\n", e.ID, e.Name)
		for _, t := range run(e) {
			t.Fprint(os.Stdout)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "sdsbench: no experiment matches %v (use -list)\n", flag.Args())
		os.Exit(1)
	}
}

// run isolates experiment panics so one failure doesn't hide the rest.
func run(e bench.Experiment) (tables []*bench.Table) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "sdsbench: %s failed: %v\n", e.ID, r)
		}
	}()
	return e.Run()
}
