// Command dspd runs the untrusted Document Store Provider as a TCP
// server. Terminals connect with dsp.Dial / dsp.DialPool (or
// cmd/sdsctl -store).
//
// Usage:
//
//	dspd [-addr :7070] [-store DIR] [-shards 16] [-cache-mb 64] [-workers 0] [-depth 0] [-mmap=true] [-sendfile=true]
//
// Without -store the store is in-memory: sharded by document id,
// fronted by an LRU block cache, gone on exit. With -store DIR it is
// durable: the same sharded in-memory tier serves reads, but every
// acknowledged write goes through a per-shard WAL segment in DIR first
// (group-committed fsyncs per segment, background per-shard checkpoint
// + log compaction), so the daemon can be killed -9 at any instant and
// restart on the last durable state — segment logs replay in parallel
// at startup. DIR is flock-protected (two daemons cannot share it) and
// a PR 4 single-file layout found there is migrated to segments once,
// automatically. dspd models the honest-but-curious server of the
// architecture, whose compromise the client-side access control is
// designed to survive — scaling it out never weakens the security
// argument, which is why it is the tier built for fan-out.
//
// On SIGINT/SIGTERM the server drains in-flight requests, checkpoints
// the durable store (making the next start instant), and reports cache
// and durability counters before exiting.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/dsp"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	storeDir := flag.String("store", "", "durable store directory (empty: in-memory only)")
	shards := flag.Int("shards", dsp.DefaultShards,
		"store shard count (with -store: fixes the WAL segment count at creation; an existing store keeps its persisted count)")
	cacheMB := flag.Int("cache-mb", 64, "LRU block cache budget in MiB (0 disables the cache)")
	workers := flag.Int("workers", 0, "max concurrently executing requests (0: 4×GOMAXPROCS)")
	depth := flag.Int("depth", 0, "per-connection pipeline depth (0: default)")
	ckptMB := flag.Int("checkpoint-mb", 0,
		"with -store: total WAL budget in MiB; a segment crossing its share is checkpointed in the background (0: default, -1: never)")
	noSync := flag.Bool("nosync", false,
		"with -store: skip fsync (throughput over durability; a crash can lose acknowledged writes)")
	recoveryWorkers := flag.Int("recovery-workers", 0,
		"with -store: parallel segment-recovery workers at startup (0: GOMAXPROCS, 1: sequential)")
	useMmap := flag.Bool("mmap", true,
		"with -store: mmap checkpoint images and serve checkpoint-resident blocks as zero-copy views (off: heap-resident tier only)")
	useSendfile := flag.Bool("sendfile", true,
		"with -store: serve contiguous checkpoint-resident block runs with sendfile(2) instead of writev (off: always writev)")
	flag.Parse()

	var store dsp.Store
	var durable *dsp.FileStore
	if *storeDir != "" {
		var err error
		durable, err = dsp.NewFileStoreOptions(*storeDir, dsp.FileStoreOptions{
			Shards:              *shards,
			NoSync:              *noSync,
			CheckpointBytes:     int64(*ckptMB) << 20,
			RecoveryParallelism: *recoveryWorkers,
			DisableMmap:         !*useMmap,
			DisableSendfile:     !*useSendfile,
		})
		if err != nil {
			log.Fatal(err)
		}
		st := durable.Stats()
		log.Printf("dspd: recovered %s in %v: %d segments, %d log records replayed (%d superseded), torn tail: %v",
			*storeDir, st.RecoveryDuration, st.SegmentCount, st.ReplayedRecords, st.SkippedRecords, st.TornTail)
		if st.MappedBytes > 0 {
			log.Printf("dspd: mmap tier: %d KiB of checkpoint images mapped across %d segments", st.MappedBytes>>10, st.SegmentCount)
		}
		if st.FooterMigrations > 0 {
			log.Printf("dspd: rewrote %d checkpoint images with block-index footers", st.FooterMigrations)
		}
		if st.Migrated {
			log.Printf("dspd: migrated %s from the single-file layout to %d segments", *storeDir, st.SegmentCount)
		}
		// An existing store keeps its persisted segment count; echo the
		// real one, not the flag.
		*shards = st.SegmentCount
		store = durable
	} else {
		store = dsp.NewMemStoreShards(*shards)
	}
	var cache *dsp.Cache
	if *cacheMB > 0 {
		cache = dsp.NewCache(store, int64(*cacheMB)<<20)
		store = cache
	}
	srv := dsp.NewServerConfig(store, dsp.ServerConfig{
		Workers:       *workers,
		PipelineDepth: *depth,
	})
	srv.Logf = log.Printf
	srv.Stats = func() dsp.ServerStats {
		var st dsp.ServerStats
		if ids, err := store.ListDocuments(); err == nil {
			st.Documents = len(ids)
		}
		if cache != nil {
			cs := cache.Stats()
			st.Cache = &cs
		}
		if durable != nil {
			ds := durable.Stats()
			st.Durable = &ds
		}
		return st
	}

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*addr) }()
	kind := "in-memory"
	if durable != nil {
		kind = "durable (" + *storeDir + ")"
	}
	log.Printf("dspd: serving the untrusted %s store on %s (%d shards, cache %d MiB)",
		kind, *addr, *shards, *cacheMB)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
	case s := <-sig:
		log.Printf("dspd: %v, draining", s)
		if err := srv.Close(); err != nil {
			log.Printf("dspd: close: %v", err)
		}
	}
	if cache != nil {
		st := cache.Stats()
		log.Printf("dspd: cache %d hits / %d misses (%.1f%% hit rate), %d blocks resident, %d evictions",
			st.Hits, st.Misses, 100*st.HitRate(), st.Blocks, st.Evictions)
	}
	if durable != nil {
		// Checkpoint so the next start replays nothing; the WAL made
		// everything durable already, this is a startup-latency favor.
		if err := durable.Checkpoint(); err != nil {
			log.Printf("dspd: final checkpoint: %v", err)
		} else {
			log.Printf("dspd: final checkpoint of %d segments in %v",
				durable.Stats().SegmentCount, durable.Stats().LastCheckpointDuration)
		}
		if err := durable.Close(); err != nil {
			log.Printf("dspd: closing store: %v", err)
		}
		st := durable.Stats()
		log.Printf("dspd: wal %d records / %d KiB appended, %d fsync barriers, %d segment checkpoints",
			st.Records, st.AppendedBytes>>10, st.Syncs, st.Checkpoints)
		log.Printf("dspd: reads served: %d mapped (zero-copy), %d heap", st.MmapReads, st.HeapReads)
		if st.SendfileReads > 0 || st.SendfileFallbacks > 0 {
			log.Printf("dspd: sendfile: %d runs / %d KiB kernel-to-wire, %d writev fallbacks",
				st.SendfileReads, st.SendfileBytes>>10, st.SendfileFallbacks)
		}
	}
}
