// Command dspd runs the untrusted Document Store Provider as a TCP
// server. Terminals connect with dsp.Dial / dsp.DialPool (or
// cmd/sdsctl -store).
//
// Usage:
//
//	dspd [-addr :7070] [-shards 16] [-cache-mb 64] [-workers 0] [-depth 0]
//
// The store is in-memory, sharded by document id, and fronted by an LRU
// block cache; the server pipelines requests per connection over a
// bounded worker pool. dspd models the honest-but-curious server of the
// architecture, whose compromise the client-side access control is
// designed to survive — scaling it out never weakens the security
// argument, which is why it is the tier built for fan-out.
//
// On SIGINT/SIGTERM the server drains in-flight requests and reports the
// cache counters before exiting.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/dsp"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	shards := flag.Int("shards", dsp.DefaultShards, "store shard count")
	cacheMB := flag.Int("cache-mb", 64, "LRU block cache budget in MiB (0 disables the cache)")
	workers := flag.Int("workers", 0, "max concurrently executing requests (0: 4×GOMAXPROCS)")
	depth := flag.Int("depth", 0, "per-connection pipeline depth (0: default)")
	flag.Parse()

	var store dsp.Store = dsp.NewMemStoreShards(*shards)
	var cache *dsp.Cache
	if *cacheMB > 0 {
		cache = dsp.NewCache(store, int64(*cacheMB)<<20)
		store = cache
	}
	srv := dsp.NewServerConfig(store, dsp.ServerConfig{
		Workers:       *workers,
		PipelineDepth: *depth,
	})
	srv.Logf = log.Printf

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*addr) }()
	log.Printf("dspd: serving the untrusted store on %s (%d shards, cache %d MiB)",
		*addr, *shards, *cacheMB)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
	case s := <-sig:
		log.Printf("dspd: %v, draining", s)
		if err := srv.Close(); err != nil {
			log.Printf("dspd: close: %v", err)
		}
	}
	if cache != nil {
		st := cache.Stats()
		log.Printf("dspd: cache %d hits / %d misses (%.1f%% hit rate), %d blocks resident, %d evictions",
			st.Hits, st.Misses, 100*st.HitRate(), st.Blocks, st.Evictions)
	}
}
