// Command dspd runs the untrusted Document Store Provider as a TCP
// server. Terminals connect with dsp.Dial (or cmd/sdsctl -store).
//
// Usage:
//
//	dspd [-addr :7070]
//
// The store is in-memory: dspd models the honest-but-curious server of
// the architecture, whose compromise the client-side access control is
// designed to survive.
package main

import (
	"flag"
	"log"

	"repro/internal/dsp"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	flag.Parse()

	srv := dsp.NewServer(dsp.NewMemStore())
	srv.Logf = log.Printf
	log.Printf("dspd: serving the untrusted store on %s", *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatal(err)
	}
}
