// Command automdump compiles access-control rules into their
// non-deterministic automata and prints them — a faithful reproduction of
// the paper's Figure 2 ("Access control rule automaton": navigational
// path in white, predicate paths in gray).
//
// Usage:
//
//	automdump [-dot] [-tags a,b,c] EXPR...
//	automdump -dot '//b[c]/d' | dot -Tpng > fig2.png
//
// The dictionary defaults to the name tests appearing in the expressions;
// -tags overrides it (tags absent from the dictionary compile to dead
// transitions, exactly as on a card session for a document lacking them).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/automaton"
	"repro/internal/tagdict"
	"repro/internal/xpath"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("automdump: ")
	dot := flag.Bool("dot", false, "emit Graphviz instead of text")
	tags := flag.String("tags", "", "comma-separated tag dictionary (default: the expressions' name tests)")
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("usage: automdump [-dot] [-tags a,b,c] EXPR...")
	}

	paths := make([]*xpath.Path, 0, flag.NArg())
	for _, expr := range flag.Args() {
		p, err := xpath.Parse(expr)
		if err != nil {
			log.Fatal(err)
		}
		paths = append(paths, p)
	}

	dict := tagdict.New()
	if *tags != "" {
		for _, t := range strings.Split(*tags, ",") {
			if _, err := dict.Add(strings.TrimSpace(t)); err != nil {
				log.Fatal(err)
			}
		}
	} else {
		for _, p := range paths {
			for _, name := range p.NameTests() {
				if _, err := dict.Add(name); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	for i, p := range paths {
		m, err := automaton.Compile(p, dict)
		if err != nil {
			log.Fatal(err)
		}
		if *dot {
			fmt.Print(m.DOT(dict, fmt.Sprintf("rule%d", i+1)))
		} else {
			fmt.Print(m.Dump(dict))
			fmt.Fprintln(os.Stdout)
		}
	}
}
