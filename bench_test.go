package sds

// One testing.B benchmark per experiment of EXPERIMENTS.md (E1–E10). Each
// measures the experiment's hot kernel and reports the experiment's
// headline quantity as a custom metric; cmd/sdsbench prints the full
// tables the experiments produce.

import (
	"fmt"
	"testing"

	"repro/internal/accessrule"
	"repro/internal/bench"
	"repro/internal/card"
	"repro/internal/dissem"
	"repro/internal/docenc"
	"repro/internal/soe"
	"repro/internal/workload"
)

// BenchmarkE1RuleScaling measures pure-engine throughput (no crypto, no
// card) as rule count grows, with and without the index's rule
// suspension.
func BenchmarkE1RuleScaling(b *testing.B) {
	doc := workload.RandomDocument(workload.TreeConfig{
		Seed: 42, Elements: 3000, MaxDepth: 8, MaxFanout: 6, AttrProb: 0.3, TextProb: 0.7,
	})
	payload := bench.MustPayload(doc, docenc.EncodeOptions{MinSkipBytes: 32})
	for _, n := range []int{8, 32, 128} {
		cfg := workload.ProfileConfig(workload.ProfileDescendant, 7, n, nil)
		rs := workload.RandomRuleSet("bench", cfg)
		for _, mode := range []struct {
			name    string
			disable bool
		}{{"index", false}, {"noindex", true}} {
			b.Run(fmt.Sprintf("rules=%d/%s", n, mode.name), func(b *testing.B) {
				var events int
				for i := 0; i < b.N; i++ {
					run, err := bench.RunEngine(payload, rs, nil, mode.disable)
					if err != nil {
						b.Fatal(err)
					}
					events = run.Events
				}
				b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}

// BenchmarkE2MemoryFootprint measures a full e-gate session and reports
// its secure-RAM peak.
func BenchmarkE2MemoryFootprint(b *testing.B) {
	doc := workload.RandomDocument(workload.TreeConfig{
		Seed: 404, Elements: 600, MaxDepth: 8, MaxFanout: 3, TextProb: 0.5, AttrProb: 0.2,
	})
	rs := workload.RandomRuleSet("bench",
		workload.ProfileConfig(workload.ProfileShallow, 4, 8, nil))
	rig, err := bench.NewPullRig(doc, "e2", card.EGate, docenc.EncodeOptions{}, rs)
	if err != nil {
		b.Fatal(err)
	}
	var peak int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rig.Query("bench", "", soe.Options{})
		if err != nil {
			b.Fatal(err)
		}
		peak = res.Stats.Session.RAMPeak
	}
	b.ReportMetric(float64(peak), "RAM-peak-bytes")
}

// BenchmarkE3SkipBenefit measures the pull path at 25% authorization,
// with and without the index, reporting blocks fetched.
func BenchmarkE3SkipBenefit(b *testing.B) {
	doc := bench.SectionedDocument(11, 24)
	rs := bench.SectionRules("bench", 5)
	rig, err := bench.NewPullRig(doc, "e3", card.EGate, docenc.EncodeOptions{}, rs)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opts soe.Options
	}{
		{"index", soe.Options{}},
		{"noindex", soe.Options{DisableSkip: true, DisableCopy: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var blocks int
			for i := 0; i < b.N; i++ {
				res, err := rig.Query("bench", "", mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				blocks = res.Stats.BlocksFetched
			}
			b.ReportMetric(float64(blocks), "blocks-fetched")
		})
	}
}

// BenchmarkE4IndexOverhead measures encoding and reports the index's
// storage overhead in percent.
func BenchmarkE4IndexOverhead(b *testing.B) {
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 4, Patients: 40, VisitsPerPatient: 4})
	var overhead float64
	for i := 0; i < b.N; i++ {
		_, info, err := docenc.EncodePayload(doc, docenc.EncodeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		overhead = 100 * float64(info.IndexBytes) / float64(info.PayloadBytes-info.IndexBytes)
	}
	b.ReportMetric(overhead, "index-overhead-%")
}

// BenchmarkE5PullLatency measures the full encrypted pull path and
// reports simulated e-gate milliseconds.
func BenchmarkE5PullLatency(b *testing.B) {
	doc := workload.MedicalFolder(workload.MedicalConfig{Seed: 20, Patients: 20, VisitsPerPatient: 4})
	rs := workload.MustParseRules("subject nurse\ndefault -\n+ /folder\n- //ssn\n- //contact\n- //report")
	rig, err := bench.NewPullRig(doc, "e5", card.EGate, docenc.EncodeOptions{}, rs)
	if err != nil {
		b.Fatal(err)
	}
	var simMS float64
	for i := 0; i < b.N; i++ {
		res, err := rig.Query("nurse", "", soe.Options{})
		if err != nil {
			b.Fatal(err)
		}
		simMS = res.Stats.Time.Total().Seconds() * 1000
	}
	b.ReportMetric(simMS, "sim-egate-ms")
}

// BenchmarkE6PendingBuffer measures a pending-heavy query and reports the
// terminal's pending buffer in bytes.
func BenchmarkE6PendingBuffer(b *testing.B) {
	doc := workload.RandomDocument(workload.TreeConfig{
		Seed: 6, Elements: 800, MaxDepth: 6, MaxFanout: 4, TextProb: 0.8,
	})
	rs := workload.RandomRuleSet("bench",
		workload.ProfileConfig(workload.ProfilePredicate, 6, 16, nil))
	rig, err := bench.NewPullRig(doc, "e6", card.Modern, docenc.EncodeOptions{}, rs)
	if err != nil {
		b.Fatal(err)
	}
	var pending int64
	for i := 0; i < b.N; i++ {
		res, err := rig.Query("bench", "", soe.Options{})
		if err != nil {
			b.Fatal(err)
		}
		pending = res.Stats.PendingBytes
	}
	b.ReportMetric(float64(pending), "pending-bytes")
}

// BenchmarkE7Dissemination measures a broadcast to one parental-control
// subscriber and reports the sustainable stream rate on e-gate hardware.
func BenchmarkE7Dissemination(b *testing.B) {
	doc := workload.MediaStream(workload.StreamConfig{Seed: 3, Segments: 60, PayloadBytes: 256})
	key := KeyFromSeed("bench-e7")
	container, _, err := docenc.Encode(doc, docenc.EncodeOptions{DocID: "s", Key: key, MinSkipBytes: 32})
	if err != nil {
		b.Fatal(err)
	}
	rs := workload.MustParseRules(`subject child` + "\n" + `default -` + "\n" + `+ //segment[@rating = "all"]`)
	rs.DocID = "s"
	var rate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := card.New(card.EGate)
		if err := c.PutKey("s", key); err != nil {
			b.Fatal(err)
		}
		if err := c.PutRuleSet(rs); err != nil {
			b.Fatal(err)
		}
		sub := dissem.NewSubscriber("child", c, nil, soe.Options{})
		recs, err := dissem.Broadcast(container, "child", []*dissem.Subscriber{sub})
		if err != nil {
			b.Fatal(err)
		}
		rate = float64(container.StoredSize()) / recs[0].Time.Total().Seconds() / 1024
	}
	b.ReportMetric(rate, "stream-KB/s")
}

// BenchmarkE8DynamicRules measures the two costs of a policy change: the
// sealed-blob upload of this system vs the bytes the static
// encryption-per-subset baseline would re-encrypt.
func BenchmarkE8DynamicRules(b *testing.B) {
	doc := workload.Agenda(workload.AgendaConfig{Seed: 9, Members: 20, EventsPerMember: 8})
	before := map[string]*accessrule.RuleSet{
		"alice": workload.MustParseRules("subject alice\ndefault +"),
		"bob":   workload.MustParseRules("subject bob\ndefault -\n+ /agenda\n- //phone\n- //notes"),
	}
	after := map[string]*accessrule.RuleSet{
		"alice": before["alice"],
		"bob":   workload.MustParseRules("subject bob\ndefault -\n+ /agenda\n- //phone"),
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		ours, baseline := bench.PolicyChangeCost(doc, before, after, "bob")
		ratio = float64(baseline) / float64(ours)
	}
	b.ReportMetric(ratio, "baseline/ours-bytes")
}

// BenchmarkE10PipelinedGateway measures the card-fleet gateway with
// prefetching terminals under 4 concurrent subjects over loopback TCP
// and reports aggregate queries per second.
func BenchmarkE10PipelinedGateway(b *testing.B) {
	rig, err := bench.NewE10Rig()
	if err != nil {
		b.Fatal(err)
	}
	defer rig.Close()
	const subjects = 4
	g, pool, err := rig.Gateway(subjects, 8)
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	defer g.Close()
	var qps float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qps, _, _, err = rig.Hammer(g, subjects, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(qps, "queries/s")
}

// BenchmarkE11DeltaRepublish measures a 10%-churn delta re-publication
// over loopback TCP and reports the wire bytes as a percentage of what
// the full re-upload moves.
func BenchmarkE11DeltaRepublish(b *testing.B) {
	base := bench.E11BaseDocument()
	mutated := bench.ChurnDocument(base, 10)
	fullBytes, _, err := bench.E11FullRepublish(base, mutated)
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deltaBytes, _, _, err := bench.E11DeltaRepublishRun(base, mutated)
		if err != nil {
			b.Fatal(err)
		}
		ratio = 100 * float64(deltaBytes) / float64(fullBytes)
	}
	b.ReportMetric(ratio, "delta-bytes-%")
}

// BenchmarkE12DurableRepublish measures 1-block delta commits against
// the WAL-backed durable store and reports the bytes that hit the disk
// per commit — the write-amplification axis E12 tables in full.
func BenchmarkE12DurableRepublish(b *testing.B) {
	dir := b.TempDir()
	fs, err := NewFileStoreOptions(dir, FileStoreOptions{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Close()
	if err := bench.E12Seed(fs); err != nil {
		b.Fatal(err)
	}
	before := fs.Stats()
	var commits int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := bench.E12CommitRound(fs, uint32(2+i))
		if err != nil {
			b.Fatal(err)
		}
		commits += n
	}
	b.StopTimer()
	st := fs.Stats()
	if commits > 0 {
		b.ReportMetric(float64(st.AppendedBytes-before.AppendedBytes)/float64(commits), "disk-bytes/commit")
	}
}

// BenchmarkE13SegmentedCommits measures 8 concurrent 1-block delta
// committers against the segmented durable store — writers to different
// documents append under different per-shard log mutexes, the scaling
// axis E13 tables in full.
func BenchmarkE13SegmentedCommits(b *testing.B) {
	dir := b.TempDir()
	fs, err := NewFileStoreOptions(dir, FileStoreOptions{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Close()
	if err := bench.E13Seed(fs); err != nil {
		b.Fatal(err)
	}
	var commits int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := bench.E13ConcurrentRound(fs, 8, uint32(2+i))
		if err != nil {
			b.Fatal(err)
		}
		commits += n
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(commits)/b.Elapsed().Seconds(), "commits/s")
	}
}

// BenchmarkE9ConcurrentDSP measures the scaled DSP (sharded store, LRU
// cache, pipelined server, pooled batched clients) under 4 concurrent
// clients over loopback TCP and reports aggregate blocks per second.
func BenchmarkE9ConcurrentDSP(b *testing.B) {
	rig, err := bench.NewDSPRig(true, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer rig.Close()
	var rate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rate, err = rig.Hammer(4, 10, true)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rate, "blocks/s")
}
